//! In-memory digest of a trace: the round-convergence quantities the
//! paper reasons about, computed once at end of run and cheap to attach
//! to `RunStats`.

use crate::TraceEvent;

/// Number of log2 buckets in the settled-per-round histogram. Bucket `i`
/// counts rounds that settled in `[2^(i-1), 2^i)` items (bucket 0 counts
/// zero-settled rounds).
pub const HISTOGRAM_BUCKETS: usize = 16;

/// Digest of the round records in one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Total round records in the trace across every phase.
    pub total_rounds: u64,
    /// Rounds in the longest single phase — the synchronous depth the run
    /// had to wait through, i.e. "rounds to converge" in the paper's sense.
    pub rounds_to_converge: u64,
    /// Median round duration, microseconds.
    pub round_time_p50_us: u64,
    /// 95th-percentile round duration, microseconds.
    pub round_time_p95_us: u64,
    /// 99th-percentile round duration, microseconds.
    pub round_time_p99_us: u64,
    /// Slowest round, microseconds.
    pub round_time_max_us: u64,
    /// Log2 histogram of items settled per round; see [`HISTOGRAM_BUCKETS`].
    pub settled_histogram: [u64; HISTOGRAM_BUCKETS],
    /// `(phase name, rounds recorded in that phase)`, in first-appearance
    /// order.
    pub phase_rounds: Vec<(String, u64)>,
}

impl TraceSummary {
    /// Compute the digest from raw trace events.
    pub fn from_events(events: &[TraceEvent]) -> TraceSummary {
        let mut durations: Vec<u64> = Vec::new();
        let mut histogram = [0u64; HISTOGRAM_BUCKETS];
        for event in events {
            if let TraceEvent::Round { record, .. } = event {
                durations.push(record.duration_us);
                histogram[settled_bucket(record.settled)] += 1;
            }
        }
        let phase_rounds = crate::rounds_per_phase(events);
        let rounds_to_converge = phase_rounds.iter().map(|&(_, c)| c).max().unwrap_or(0);

        durations.sort_unstable();
        // Nearest-rank percentile: the smallest value with at least p of
        // the mass at or below it.
        let percentile = |p: f64| -> u64 {
            if durations.is_empty() {
                return 0;
            }
            let rank = (p * durations.len() as f64).ceil() as usize;
            durations[rank.clamp(1, durations.len()) - 1]
        };

        TraceSummary {
            total_rounds: durations.len() as u64,
            rounds_to_converge,
            round_time_p50_us: percentile(0.50),
            round_time_p95_us: percentile(0.95),
            round_time_p99_us: percentile(0.99),
            round_time_max_us: durations.last().copied().unwrap_or(0),
            settled_histogram: histogram,
            phase_rounds,
        }
    }

    /// Rounds recorded under `phase`, or 0 if the phase never ran.
    pub fn rounds_in_phase(&self, phase: &str) -> u64 {
        self.phase_rounds
            .iter()
            .find(|(name, _)| name == phase)
            .map(|&(_, c)| c)
            .unwrap_or(0)
    }

    /// One-line human rendering for CLI output.
    pub fn render_line(&self) -> String {
        let phases: Vec<String> = self
            .phase_rounds
            .iter()
            .map(|(name, c)| format!("{name}:{c}"))
            .collect();
        format!(
            "trace: {} rounds ({}), round time p50 {} us / p95 {} us / p99 {} us / max {} us",
            self.total_rounds,
            phases.join(" "),
            self.round_time_p50_us,
            self.round_time_p95_us,
            self.round_time_p99_us,
            self.round_time_max_us
        )
    }
}

/// Bucket index for a settled count: 0 for zero, else `log2(settled) + 1`,
/// clamped to the last bucket.
fn settled_bucket(settled: u64) -> usize {
    if settled == 0 {
        0
    } else {
        ((64 - settled.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceSink;

    #[test]
    fn summary_over_two_phases() {
        let sink = TraceSink::enabled();
        let a = sink.begin_span("induced-solve").unwrap();
        for d in [10, 20, 30] {
            sink.record_round(1, 4, 0, 1, d, false);
        }
        sink.end_span(a, Default::default());
        let b = sink.begin_span("cross-solve").unwrap();
        sink.record_round(1, 0, 0, 1, 100, true);
        sink.end_span(b, Default::default());

        let s = sink.summary().unwrap();
        assert_eq!(s.total_rounds, 4);
        assert_eq!(s.rounds_to_converge, 3);
        assert_eq!(s.round_time_max_us, 100);
        assert_eq!(s.round_time_p50_us, 20);
        // Nearest-rank p99 over 4 samples is the maximum.
        assert_eq!(s.round_time_p99_us, 100);
        assert_eq!(s.rounds_in_phase("induced-solve"), 3);
        assert_eq!(s.rounds_in_phase("cross-solve"), 1);
        assert_eq!(s.rounds_in_phase("cleanup"), 0);
        // settled=4 lands in bucket log2(4)+1 = 3; settled=0 in bucket 0.
        assert_eq!(s.settled_histogram[3], 3);
        assert_eq!(s.settled_histogram[0], 1);
        assert!(s.render_line().contains("induced-solve:3"));
    }

    #[test]
    fn empty_trace_summarizes_to_zeros() {
        let s = TraceSummary::from_events(&[]);
        assert_eq!(s.total_rounds, 0);
        assert_eq!(s.rounds_to_converge, 0);
        assert_eq!(s.round_time_p95_us, 0);
        assert_eq!(s.round_time_p99_us, 0);
    }

    #[test]
    fn buckets_are_log2() {
        assert_eq!(settled_bucket(0), 0);
        assert_eq!(settled_bucket(1), 1);
        assert_eq!(settled_bucket(2), 2);
        assert_eq!(settled_bucket(3), 2);
        assert_eq!(settled_bucket(4), 3);
        assert_eq!(settled_bucket(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }
}
