//! Batch job files.
//!
//! `sbreak batch` consumes a small TOML subset — enough to express a
//! reproduction batch without pulling a TOML dependency into the tree:
//!
//! ```toml
//! # Comments start with '#'.
//! [defaults]            # optional; keys apply to every job below
//! graph = "gen:lp1"
//! scale = 0.2
//! seed = 42
//!
//! [[job]]               # one table per job
//! label = "mm-rand"     # optional; defaults to job1, job2, ...
//! problem = "mm"        # mm | color | mis
//! algo = "rand:10"      # baseline | bridge | rand[:P] | degk[:K] | bicc
//! arch = "cpu"          # cpu | gpu (default cpu)
//! frontier = "compact"  # dense | compact | bitset (default compact)
//! threads = 4           # optional per-job pool pin
//! timeout_ms = 60000    # optional watchdog budget
//! graph_seed = 7        # optional; generation seed (defaults to seed)
//! ```
//!
//! Unknown keys and sections are hard errors with `file:line:` positions,
//! so a typo fails the batch instead of silently running defaults.

use crate::engine::Solver;
use sb_core::coloring::ColorAlgorithm;
use sb_core::common::{Arch, FrontierMode};
use sb_core::matching::MmAlgorithm;
use sb_core::mis::MisAlgorithm;
use std::collections::HashMap;

/// One fully-resolved job: everything the engine needs to run it.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Unique, filename-safe job name (used for trace and output files).
    pub label: String,
    /// Graph source string (`gen:<name>` or a path).
    pub graph: String,
    /// Scale factor for generated graphs.
    pub scale: f64,
    /// Generation seed for `gen:` sources; defaults to the solver seed.
    pub graph_seed: Option<u64>,
    /// Problem × algorithm.
    pub solver: Solver,
    /// Execution architecture.
    pub arch: Arch,
    /// Frontier representation.
    pub frontier: FrontierMode,
    /// Solver seed.
    pub seed: u64,
    /// Per-job thread-pool pin.
    pub threads: Option<usize>,
    /// Per-job watchdog budget in milliseconds.
    pub timeout_ms: Option<u64>,
}

impl JobSpec {
    /// The seed used to *generate* the graph (distinct from the solver
    /// seed so one graph can be solved at many seeds).
    pub fn effective_graph_seed(&self) -> u64 {
        self.graph_seed.unwrap_or(self.seed)
    }
}

/// Parse `problem` + `algo` strings (sbreak conventions: `rand` defaults to
/// 10 partitions for mm/mis and 2 for color; `degk` defaults to k = 2).
pub fn parse_solver(problem: &str, algo: &str) -> Result<Solver, String> {
    let (name, param) = match algo.split_once(':') {
        Some((n, p)) => {
            let v: usize = p
                .parse()
                .map_err(|_| format!("bad parameter in algo '{algo}'"))?;
            if v == 0 {
                return Err(format!("algo '{algo}' parameter must be positive"));
            }
            (n, Some(v))
        }
        None => (algo, None),
    };
    let bad_algo = || {
        format!("unknown algo '{algo}' (expected baseline, bridge, rand[:P], degk[:K], or bicc)")
    };
    match problem {
        "mm" => Ok(Solver::Mm(match name {
            "baseline" => MmAlgorithm::Baseline,
            "bridge" => MmAlgorithm::Bridge,
            "rand" => MmAlgorithm::Rand {
                partitions: param.unwrap_or(10),
            },
            "degk" => MmAlgorithm::Degk {
                k: param.unwrap_or(2),
            },
            "bicc" => MmAlgorithm::Bicc,
            _ => return Err(bad_algo()),
        })),
        "color" => Ok(Solver::Color(match name {
            "baseline" => ColorAlgorithm::Baseline,
            "bridge" => ColorAlgorithm::Bridge,
            "rand" => ColorAlgorithm::Rand {
                partitions: param.unwrap_or(2),
            },
            "degk" => ColorAlgorithm::Degk {
                k: param.unwrap_or(2),
            },
            "bicc" => ColorAlgorithm::Bicc,
            _ => return Err(bad_algo()),
        })),
        "mis" => Ok(Solver::Mis(match name {
            "baseline" => MisAlgorithm::Baseline,
            "bridge" => MisAlgorithm::Bridge,
            "rand" => MisAlgorithm::Rand {
                partitions: param.unwrap_or(10),
            },
            "degk" => MisAlgorithm::Degk {
                k: param.unwrap_or(2),
            },
            "bicc" => MisAlgorithm::Bicc,
            _ => return Err(bad_algo()),
        })),
        _ => Err(format!(
            "unknown problem '{problem}' (expected mm, color, or mis)"
        )),
    }
}

pub(crate) fn parse_arch(s: &str) -> Result<Arch, String> {
    match s {
        "cpu" => Ok(Arch::Cpu),
        "gpu" | "gpu-sim" | "gpusim" => Ok(Arch::GpuSim),
        _ => Err(format!("unknown arch '{s}' (expected cpu or gpu)")),
    }
}

/// Strip a `#` comment, ignoring `#` inside double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_quotes = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_quotes = !in_quotes,
            '#' if !in_quotes => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Unwrap a value token: `"quoted"` strings or bare scalars.
fn parse_value(raw: &str) -> Result<String, String> {
    let raw = raw.trim();
    if raw.is_empty() {
        return Err("missing value".into());
    }
    if let Some(inner) = raw.strip_prefix('"') {
        let Some(inner) = inner.strip_suffix('"') else {
            return Err(format!("unterminated string {raw}"));
        };
        if inner.contains('"') {
            return Err(format!("stray quote inside {raw}"));
        }
        Ok(inner.to_string())
    } else if raw.contains('"') {
        Err(format!("stray quote in value {raw}"))
    } else {
        Ok(raw.to_string())
    }
}

const JOB_KEYS: &[&str] = &[
    "label",
    "graph",
    "scale",
    "graph_seed",
    "problem",
    "algo",
    "arch",
    "frontier",
    "seed",
    "threads",
    "timeout_ms",
];

fn label_is_safe(label: &str) -> bool {
    !label.is_empty()
        && label
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
}

/// Parse a jobs file. `file` names the source in diagnostics
/// (`file:line: message`).
pub fn parse_jobs(text: &str, file: &str) -> Result<Vec<JobSpec>, String> {
    enum Section {
        Preamble,
        Defaults,
        Job,
    }
    let mut section = Section::Preamble;
    let mut defaults: HashMap<String, String> = HashMap::new();
    // (table, line-of-each-key, header line) per [[job]], so resolution
    // errors can point at the offending line.
    type RawJob = (HashMap<String, String>, HashMap<String, usize>, usize);
    let mut raw_jobs: Vec<RawJob> = Vec::new();

    for (idx, raw_line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: String| format!("{file}:{lineno}: {msg}");
        if line.starts_with('[') {
            match line {
                "[defaults]" => {
                    if !raw_jobs.is_empty() {
                        return Err(err("[defaults] must precede all [[job]] tables".into()));
                    }
                    section = Section::Defaults;
                }
                "[[job]]" => {
                    raw_jobs.push((HashMap::new(), HashMap::new(), lineno));
                    section = Section::Job;
                }
                other => {
                    return Err(err(format!(
                        "unknown section '{other}' (expected [defaults] or [[job]])"
                    )));
                }
            }
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(err(format!("expected 'key = value', got '{line}'")));
        };
        let key = key.trim();
        if !JOB_KEYS.contains(&key) {
            return Err(err(format!(
                "unknown key '{key}' (known keys: {})",
                JOB_KEYS.join(", ")
            )));
        }
        let value = parse_value(value).map_err(&err)?;
        match section {
            Section::Preamble => {
                return Err(err(format!(
                    "key '{key}' outside any section (start with [defaults] or [[job]])"
                )));
            }
            Section::Defaults => {
                if key == "label" {
                    return Err(err("'label' cannot be defaulted (must be unique)".into()));
                }
                defaults.insert(key.to_string(), value);
            }
            Section::Job => {
                let (table, lines, _) = raw_jobs.last_mut().expect("in a job section");
                if table.insert(key.to_string(), value).is_some() {
                    return Err(err(format!("duplicate key '{key}' in this [[job]]")));
                }
                lines.insert(key.to_string(), lineno);
            }
        }
    }

    if raw_jobs.is_empty() {
        return Err(format!("{file}: no [[job]] tables found"));
    }

    let mut jobs = Vec::with_capacity(raw_jobs.len());
    let mut seen_labels: HashMap<String, usize> = HashMap::new();
    for (n, (table, lines, table_line)) in raw_jobs.iter().enumerate() {
        let lookup = |key: &str| table.get(key).or_else(|| defaults.get(key));
        let key_line = |key: &str| lines.get(key).copied().unwrap_or(*table_line);
        let err = |key: &str, msg: String| format!("{file}:{}: {msg}", key_line(key));

        let required = |key: &str| {
            lookup(key)
                .ok_or_else(|| format!("{file}:{table_line}: job is missing required key '{key}'"))
        };
        let parse_num = |key: &str| -> Result<Option<u64>, String> {
            lookup(key)
                .map(|v| {
                    v.parse::<u64>()
                        .map_err(|_| err(key, format!("'{key}' must be an integer, got '{v}'")))
                })
                .transpose()
        };

        let label = match table.get("label") {
            Some(l) => {
                if !label_is_safe(l) {
                    return Err(err(
                        "label",
                        format!("label '{l}' must be non-empty and use only [A-Za-z0-9._-]"),
                    ));
                }
                l.clone()
            }
            None => format!("job{}", n + 1),
        };
        if let Some(prev) = seen_labels.insert(label.clone(), *table_line) {
            return Err(format!(
                "{file}:{table_line}: duplicate label '{label}' (first used at line {prev})"
            ));
        }

        let graph = required("graph")?.clone();
        let problem = required("problem")?;
        let algo = required("algo")?;
        let solver = parse_solver(problem, algo).map_err(|m| err("algo", m))?;
        let arch = lookup("arch")
            .map(|v| parse_arch(v).map_err(|m| err("arch", m)))
            .transpose()?
            .unwrap_or(Arch::Cpu);
        let frontier = lookup("frontier")
            .map(|v| {
                v.parse::<FrontierMode>()
                    .map_err(|m| err("frontier", m.to_string()))
            })
            .transpose()?
            .unwrap_or_default();
        let scale = lookup("scale")
            .map(|v| {
                v.parse::<f64>()
                    .ok()
                    .filter(|s| s.is_finite() && *s > 0.0)
                    .ok_or_else(|| {
                        err(
                            "scale",
                            format!("'scale' must be a positive number, got '{v}'"),
                        )
                    })
            })
            .transpose()?
            .unwrap_or(1.0);
        let seed = parse_num("seed")?.unwrap_or(42);
        let graph_seed = parse_num("graph_seed")?;
        let threads = parse_num("threads")?
            .map(|t| {
                if t == 0 {
                    Err(err("threads", "'threads' must be positive".into()))
                } else {
                    Ok(t as usize)
                }
            })
            .transpose()?;
        let timeout_ms = parse_num("timeout_ms")?;

        jobs.push(JobSpec {
            label,
            graph,
            scale,
            graph_seed,
            solver,
            arch,
            frontier,
            seed,
            threads,
            timeout_ms,
        });
    }
    Ok(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"
# A reproduction batch.
[defaults]
graph = "gen:lp1"   # shared by all jobs
scale = 0.2
seed = 7

[[job]]
problem = "mm"
algo = "rand:10"

[[job]]
label = "color-degk"
problem = "color"
algo = "degk"
arch = "gpu"
frontier = "dense"
seed = 9
threads = 2
timeout_ms = 5000
"#;

    #[test]
    fn parses_defaults_and_jobs() {
        let jobs = parse_jobs(GOOD, "jobs.toml").unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].label, "job1");
        assert_eq!(jobs[0].graph, "gen:lp1");
        assert_eq!(jobs[0].scale, 0.2);
        assert_eq!(jobs[0].seed, 7);
        assert_eq!(
            jobs[0].solver,
            Solver::Mm(MmAlgorithm::Rand { partitions: 10 })
        );
        assert_eq!(jobs[0].arch, Arch::Cpu);
        assert_eq!(jobs[0].frontier, FrontierMode::Compact);
        assert_eq!(jobs[0].effective_graph_seed(), 7);

        assert_eq!(jobs[1].label, "color-degk");
        assert_eq!(jobs[1].solver, Solver::Color(ColorAlgorithm::Degk { k: 2 }));
        assert_eq!(jobs[1].arch, Arch::GpuSim);
        assert_eq!(jobs[1].frontier, FrontierMode::Dense);
        assert_eq!(jobs[1].seed, 9);
        assert_eq!(jobs[1].threads, Some(2));
        assert_eq!(jobs[1].timeout_ms, Some(5000));
    }

    #[test]
    fn diagnostics_carry_file_and_line() {
        let text = "[[job]]\nproblem = \"mm\"\nalgo = \"rand\"\nbogus = 1\n";
        let e = parse_jobs(text, "j.toml").unwrap_err();
        assert!(e.starts_with("j.toml:4:"), "{e}");
        assert!(e.contains("unknown key 'bogus'"), "{e}");

        let e = parse_jobs("[[job]]\nproblem = \"mm\"\nalgo = \"rand\"\n", "j.toml").unwrap_err();
        assert!(e.contains("missing required key 'graph'"), "{e}");

        let e = parse_jobs("graph = \"gen:lp1\"\n", "j.toml").unwrap_err();
        assert!(e.contains("outside any section"), "{e}");

        let e = parse_jobs("", "j.toml").unwrap_err();
        assert!(e.contains("no [[job]] tables"), "{e}");

        let bad_algo = "[[job]]\ngraph = \"gen:lp1\"\nproblem = \"mm\"\nalgo = \"quux\"\n";
        let e = parse_jobs(bad_algo, "j.toml").unwrap_err();
        assert!(e.starts_with("j.toml:4:"), "{e}");
        assert!(e.contains("unknown algo"), "{e}");
    }

    #[test]
    fn duplicate_labels_rejected() {
        let text = "[[job]]\nlabel = \"a\"\ngraph = \"g\"\nproblem = \"mm\"\nalgo = \"bicc\"\n\
                    [[job]]\nlabel = \"a\"\ngraph = \"g\"\nproblem = \"mm\"\nalgo = \"bicc\"\n";
        let e = parse_jobs(text, "j.toml").unwrap_err();
        assert!(e.contains("duplicate label 'a'"), "{e}");
    }

    #[test]
    fn unsafe_labels_rejected() {
        let text = "[[job]]\nlabel = \"a/b\"\ngraph = \"g\"\nproblem = \"mm\"\nalgo = \"bicc\"\n";
        let e = parse_jobs(text, "j.toml").unwrap_err();
        assert!(e.contains("[A-Za-z0-9._-]"), "{e}");
    }

    #[test]
    fn comments_respect_quotes() {
        let text =
            "[[job]]\ngraph = \"data/g#1.txt\"\nproblem = \"mis\"\nalgo = \"degk:3\" # note\n";
        let jobs = parse_jobs(text, "j.toml").unwrap();
        assert_eq!(jobs[0].graph, "data/g#1.txt");
        assert_eq!(jobs[0].solver, Solver::Mis(MisAlgorithm::Degk { k: 3 }));
    }

    #[test]
    fn solver_parsing_defaults() {
        assert_eq!(
            parse_solver("mm", "rand").unwrap(),
            Solver::Mm(MmAlgorithm::Rand { partitions: 10 })
        );
        assert_eq!(
            parse_solver("color", "rand").unwrap(),
            Solver::Color(ColorAlgorithm::Rand { partitions: 2 })
        );
        assert_eq!(
            parse_solver("mis", "rand").unwrap(),
            Solver::Mis(MisAlgorithm::Rand { partitions: 10 })
        );
        assert_eq!(
            parse_solver("mm", "degk").unwrap(),
            Solver::Mm(MmAlgorithm::Degk { k: 2 })
        );
        assert!(parse_solver("mm", "rand:0").is_err());
        assert!(parse_solver("lp", "rand").is_err());
    }
}
