//! Bounded least-recently-used cache.
//!
//! A deliberately simple LRU: a `HashMap` of entries stamped with a
//! monotonic use tick, evicting the minimum-tick entry when full. Eviction
//! is O(capacity), which is irrelevant at the cache sizes the engine runs
//! (tens of entries, each worth milliseconds-to-seconds of decomposition
//! work). Capacity 0 disables the cache entirely: every lookup misses and
//! inserts are dropped, which is the `--cache-cap 0` reference path the
//! CLI and fuzz layers diff cached runs against.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

/// Entries inserted without an explicit tenant are charged to this one.
pub const DEFAULT_TENANT: &str = "-";

/// Hit/miss/eviction counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries displaced to make room.
    pub evictions: u64,
    /// Entries stored.
    pub inserts: u64,
}

impl CacheStats {
    /// Total lookups (hits + misses).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups that hit, in `[0, 1]`; 0 when never queried.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }

    /// `"66.7%"`-style rendering of [`CacheStats::hit_rate`], `"-"` when
    /// the cache was never queried.
    pub fn hit_rate_label(&self) -> String {
        if self.lookups() == 0 {
            "-".into()
        } else {
            format!("{:.1}%", 100.0 * self.hit_rate())
        }
    }
}

struct Entry<V> {
    value: V,
    last_used: u64,
    /// Caller-estimated resident size, for the bytes gauge (0 when the
    /// caller used plain [`Lru::insert`]).
    weight: u64,
    /// Which tenant's byte budget this entry is charged to.
    tenant: Arc<str>,
}

/// Global-registry handles for one named cache (see DESIGN.md §12).
///
/// Hit/miss/eviction/insert counts are `Logical`: the engine touches its
/// caches in deterministic job order, so they must match across thread
/// counts. The occupancy gauges are `Runtime`: levels, not event counts.
struct LruMetrics {
    hits: sb_metrics::Counter,
    misses: sb_metrics::Counter,
    evictions: sb_metrics::Counter,
    inserts: sb_metrics::Counter,
    entries: sb_metrics::Gauge,
    bytes: sb_metrics::Gauge,
}

impl LruMetrics {
    fn new(name: &str) -> LruMetrics {
        use sb_metrics::Class::{Logical, Runtime};
        let r = sb_metrics::global();
        let series = |suffix: &str| format!("sb_engine_{name}_cache_{suffix}");
        LruMetrics {
            hits: r.counter(&series("hits"), Logical),
            misses: r.counter(&series("misses"), Logical),
            evictions: r.counter(&series("evictions"), Logical),
            inserts: r.counter(&series("inserts"), Logical),
            entries: r.gauge(&series("entries"), Runtime),
            bytes: r.gauge(&series("bytes"), Runtime),
        }
    }
}

/// A bounded LRU map with optional per-tenant byte quotas.
///
/// Quota semantics (see DESIGN.md §13): with `tenant_quota = None` (the
/// default) every entry belongs to one global pool and eviction is plain
/// LRU — byte-for-byte the pre-quota behavior. With a quota set, a tenant
/// may *burst* past its byte budget while the cache has spare slots (the
/// cache stays work-conserving), but under capacity pressure the victim is
/// chosen LRU-first among entries of tenants currently **over** quota,
/// then among the inserting tenant's own entries. Entries of other tenants
/// at-or-under quota are never evicted on a third party's behalf; if no
/// eligible victim exists (an over-committed configuration: every slot is
/// held by a protected foreign tenant), the insert is dropped rather than
/// violating the protection.
pub struct Lru<K, V> {
    cap: usize,
    tick: u64,
    map: HashMap<K, Entry<V>>,
    stats: CacheStats,
    metrics: Option<LruMetrics>,
    tenant_quota: Option<u64>,
    tenant_bytes: HashMap<Arc<str>, u64>,
}

impl<K: Eq + Hash + Clone, V> Lru<K, V> {
    /// An LRU holding at most `cap` entries (0 = disabled).
    pub fn new(cap: usize) -> Lru<K, V> {
        Lru {
            cap,
            tick: 0,
            map: HashMap::new(),
            stats: CacheStats::default(),
            metrics: None,
            tenant_quota: None,
            tenant_bytes: HashMap::new(),
        }
    }

    /// [`Lru::new`], additionally reporting into the global metrics
    /// registry as `sb_engine_<name>_cache_*`.
    pub fn with_metrics(cap: usize, name: &str) -> Lru<K, V> {
        Lru {
            metrics: Some(LruMetrics::new(name)),
            ..Lru::new(cap)
        }
    }

    /// Capacity this cache was built with.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Set the per-tenant byte quota (`None` = unlimited, the default).
    pub fn set_tenant_quota(&mut self, quota: Option<u64>) {
        self.tenant_quota = quota;
    }

    /// The per-tenant byte quota, if one is set.
    pub fn tenant_quota(&self) -> Option<u64> {
        self.tenant_quota
    }

    /// Bytes currently charged to `tenant` (0 for an unknown tenant).
    pub fn tenant_bytes(&self, tenant: &str) -> u64 {
        self.tenant_bytes.get(tenant).copied().unwrap_or(0)
    }

    /// `(tenant, resident bytes)` for every tenant with live entries,
    /// sorted by tenant name for stable rendering.
    pub fn tenant_usage(&self) -> Vec<(String, u64)> {
        let mut usage: Vec<(String, u64)> = self
            .tenant_bytes
            .iter()
            .map(|(t, b)| (t.to_string(), *b))
            .collect();
        usage.sort();
        usage
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn note_hit(&mut self) {
        self.stats.hits += 1;
        if let Some(m) = &self.metrics {
            m.hits.inc();
        }
    }

    fn note_miss(&mut self) {
        self.stats.misses += 1;
        if let Some(m) = &self.metrics {
            m.misses.inc();
        }
    }

    /// Look `k` up, refreshing its recency on a hit.
    pub fn get(&mut self, k: &K) -> Option<&V> {
        self.get_mut(k).map(|v| &*v)
    }

    /// Mutable lookup (same recency/statistics behavior as [`get`]).
    ///
    /// [`get`]: Lru::get
    pub fn get_mut(&mut self, k: &K) -> Option<&mut V> {
        self.tick += 1;
        let tick = self.tick;
        let hit = match self.map.get_mut(k) {
            Some(e) => {
                e.last_used = tick;
                true
            }
            None => false,
        };
        if hit {
            self.note_hit();
        } else {
            self.note_miss();
        }
        self.map.get_mut(k).map(|e| &mut e.value)
    }

    /// Snapshot of the live keys (unordered). Does not touch recency or
    /// statistics; exists for test hooks that need to walk the cache.
    pub fn keys(&self) -> Vec<K> {
        self.map.keys().cloned().collect()
    }

    /// Store `v` under `k`, evicting the least-recently-used entry when the
    /// cache is full. A no-op at capacity 0.
    pub fn insert(&mut self, k: K, v: V) {
        self.insert_weighted(k, v, 0);
    }

    /// [`Lru::insert`] with an estimated resident size in bytes, carried
    /// into the `sb_engine_<name>_cache_bytes` gauge. Charged to
    /// [`DEFAULT_TENANT`].
    pub fn insert_weighted(&mut self, k: K, v: V, weight: u64) {
        self.insert_weighted_for(DEFAULT_TENANT, k, v, weight);
    }

    /// [`Lru::insert_weighted`], charging the entry to `tenant`'s byte
    /// budget. With a quota set, eviction under capacity pressure follows
    /// the fairness policy documented on [`Lru`].
    pub fn insert_weighted_for(&mut self, tenant: &str, k: K, v: V, weight: u64) {
        if self.cap == 0 {
            return;
        }
        self.tick += 1;
        if !self.map.contains_key(&k) && self.map.len() >= self.cap {
            let victim = match self.tenant_quota {
                None => self.lru_key(|_| true),
                Some(quota) => self
                    .lru_key(|e| self.tenant_bytes(&e.tenant) > quota)
                    .or_else(|| self.lru_key(|e| &*e.tenant == tenant)),
            };
            match victim {
                Some(victim) => self.evict(&victim),
                // Every slot is held by a protected foreign tenant: drop
                // the insert instead of breaking another tenant's quota.
                None => return,
            }
        }
        self.stats.inserts += 1;
        let tenant: Arc<str> = match self.tenant_bytes.get_key_value(tenant) {
            Some((t, _)) => t.clone(),
            None => Arc::from(tenant),
        };
        *self.tenant_bytes.entry(tenant.clone()).or_insert(0) += weight;
        let displaced = self.map.insert(
            k,
            Entry {
                value: v,
                last_used: self.tick,
                weight,
                tenant,
            },
        );
        if let Some(e) = &displaced {
            self.uncharge(e.tenant.clone(), e.weight);
        }
        if let Some(m) = &self.metrics {
            m.inserts.inc();
            m.bytes.sub(displaced.map_or(0, |e| e.weight));
            m.bytes.add(weight);
            m.entries.set(self.map.len() as u64);
        }
        self.debug_assert_tenant_accounting();
    }

    /// Least-recently-used key among entries matching `eligible`.
    fn lru_key(&self, eligible: impl Fn(&Entry<V>) -> bool) -> Option<K> {
        self.map
            .iter()
            .filter(|(_, e)| eligible(e))
            .min_by_key(|(_, e)| e.last_used)
            .map(|(k, _)| k.clone())
    }

    fn evict(&mut self, victim: &K) {
        let evicted = self.map.remove(victim).expect("victim key is live");
        self.stats.evictions += 1;
        self.uncharge(evicted.tenant, evicted.weight);
        if let Some(m) = &self.metrics {
            m.evictions.inc();
            m.bytes.sub(evicted.weight);
        }
        self.debug_assert_tenant_accounting();
    }

    /// Subtract an entry's weight from its tenant exactly once (the entry
    /// has just left the map, by eviction or displacement). Every live
    /// entry keeps its tenant's byte row alive, so the row must exist and
    /// must hold at least this entry's weight — in debug builds both are
    /// hard errors instead of a silent saturating clamp, because a clamp
    /// here means some weight was subtracted twice (or never charged) and
    /// the quota fairness policy is running on stale numbers.
    fn uncharge(&mut self, tenant: Arc<str>, weight: u64) {
        match self.tenant_bytes.get_mut(&tenant) {
            Some(bytes) => {
                debug_assert!(
                    *bytes >= weight,
                    "uncharging {weight} bytes from tenant {tenant:?} holding only {bytes}"
                );
                *bytes = bytes.saturating_sub(weight);
                if *bytes == 0 && !self.map.values().any(|e| e.tenant == tenant) {
                    self.tenant_bytes.remove(&tenant);
                }
            }
            None => debug_assert!(
                false,
                "uncharge of {weight} bytes for tenant {tenant:?} with no byte row"
            ),
        }
    }

    /// Debug-build invariant: for every tenant, the charged byte total
    /// equals the sum of its live entries' weights, and no tenant is
    /// charged without appearing in the map (a zero-byte row may linger
    /// only while the tenant still has live zero-weight entries). Runs
    /// after every mutation, so any test suite that exercises the engine
    /// caches — serve, batch, fuzz — verifies the accounting for free.
    #[inline]
    pub fn debug_assert_tenant_accounting(&self) {
        #[cfg(debug_assertions)]
        {
            let mut live: HashMap<&str, u64> = HashMap::new();
            for e in self.map.values() {
                *live.entry(&e.tenant).or_insert(0) += e.weight;
            }
            for (t, &b) in &self.tenant_bytes {
                match live.get(&**t) {
                    Some(&owned) => assert_eq!(
                        b, owned,
                        "tenant {t:?} charged {b} bytes but owns {owned} in live entries"
                    ),
                    None => assert_eq!(b, 0, "tenant {t:?} charged {b} bytes with no live entries"),
                }
            }
            for (t, &w) in &live {
                assert_eq!(
                    self.tenant_bytes.get(*t).copied().unwrap_or(0),
                    w,
                    "tenant {t:?} owns {w} bytes of live entries but the charge map disagrees"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_accounting() {
        let mut c: Lru<u32, &str> = Lru::new(4);
        assert!(c.get(&1).is_none());
        c.insert(1, "one");
        assert_eq!(c.get(&1), Some(&"one"));
        assert_eq!(
            c.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                evictions: 0,
                inserts: 1
            }
        );
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c: Lru<u32, u32> = Lru::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.get(&1); // 2 is now the LRU entry
        c.insert(3, 30);
        assert!(c.get(&2).is_none(), "LRU entry should have been evicted");
        assert_eq!(c.get(&1), Some(&10));
        assert_eq!(c.get(&3), Some(&30));
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinserting_existing_key_does_not_evict() {
        let mut c: Lru<u32, u32> = Lru::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(1, 11);
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.get(&1), Some(&11));
        assert_eq!(c.get(&2), Some(&20));
    }

    #[test]
    fn capacity_zero_disables_storage() {
        let mut c: Lru<u32, u32> = Lru::new(0);
        c.insert(1, 10);
        assert!(c.is_empty());
        assert!(c.get(&1).is_none());
        assert_eq!(c.stats().inserts, 0);
    }

    #[test]
    fn tenant_bytes_track_inserts_displacements_and_evictions() {
        let mut c: Lru<u32, u32> = Lru::new(2);
        c.insert_weighted_for("a", 1, 10, 100);
        c.insert_weighted_for("b", 2, 20, 30);
        assert_eq!(c.tenant_bytes("a"), 100);
        assert_eq!(c.tenant_bytes("b"), 30);
        // Re-keying an entry to another tenant transfers the charge.
        c.insert_weighted_for("b", 1, 11, 40);
        assert_eq!(c.tenant_bytes("a"), 0);
        assert_eq!(c.tenant_bytes("b"), 70);
        assert_eq!(c.tenant_usage(), vec![("b".to_string(), 70)]);
    }

    #[test]
    fn eviction_fairness_flooding_tenant_cannot_evict_protected_tenant() {
        // The satellite pin: tenant "a" sits at-or-under its byte quota;
        // tenant "b" floods far more entries than the cache holds. Every
        // one of b's pressure evictions must land on b's own entries.
        let mut c: Lru<u32, u32> = Lru::new(4);
        c.set_tenant_quota(Some(100));
        c.insert_weighted_for("a", 1, 10, 40);
        c.insert_weighted_for("a", 2, 20, 40);
        for i in 0..16 {
            c.insert_weighted_for("b", 100 + i, 0, 30);
        }
        assert_eq!(c.get(&1), Some(&10), "protected tenant entry evicted");
        assert_eq!(c.get(&2), Some(&20), "protected tenant entry evicted");
        assert_eq!(c.tenant_bytes("a"), 80);
        assert!(
            c.tenant_bytes("b") <= 60,
            "flooding tenant holds at most the two slots it can recycle"
        );
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn over_quota_tenant_is_first_eviction_victim() {
        // A tenant may burst past quota while there is spare room, but its
        // entries are first in line once anyone needs a slot.
        let mut c: Lru<u32, u32> = Lru::new(3);
        c.set_tenant_quota(Some(50));
        c.insert_weighted_for("a", 1, 10, 40);
        c.insert_weighted_for("a", 2, 20, 40); // a bursts to 80 > 50
        c.insert_weighted_for("b", 3, 30, 10);
        assert_eq!(c.len(), 3);
        // b needs a slot: the victim must be a's LRU entry, not b's.
        c.insert_weighted_for("b", 4, 40, 10);
        assert!(c.get(&1).is_none(), "over-quota tenant keeps its newest");
        assert_eq!(c.get(&2), Some(&20));
        assert_eq!(c.get(&3), Some(&30));
        assert_eq!(c.get(&4), Some(&40));
        assert_eq!(c.tenant_bytes("a"), 40);
    }

    #[test]
    fn insert_dropped_when_every_slot_is_protected_and_foreign() {
        let mut c: Lru<u32, u32> = Lru::new(2);
        c.set_tenant_quota(Some(100));
        c.insert_weighted_for("a", 1, 10, 50);
        c.insert_weighted_for("b", 2, 20, 50);
        // "c" owns nothing and no one is over quota: nothing may be
        // evicted on c's behalf, so the insert is dropped.
        c.insert_weighted_for("c", 3, 30, 10);
        assert!(c.get(&3).is_none());
        assert_eq!(c.get(&1), Some(&10));
        assert_eq!(c.get(&2), Some(&20));
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn randomized_churn_preserves_tenant_accounting() {
        // Model-free stress: every mutation re-verifies the sum invariant
        // internally (debug builds), so this test's job is to drive the
        // paths where stale bytes could hide — overwrite under an existing
        // key, same- and cross-tenant re-keying, pressure evictions under
        // quota, protected-drop inserts, and quota flips mid-stream.
        let mut rng = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let tenants = ["a", "b", "c", "d"];
        for cap in [1usize, 2, 5, 8] {
            let mut c: Lru<u32, u32> = Lru::new(cap);
            for step in 0..4000u32 {
                match next() % 10 {
                    0..=6 => {
                        let t = tenants[(next() % 4) as usize];
                        let k = (next() % 12) as u32; // small key space → overwrites
                        let w = next() % 100;
                        c.insert_weighted_for(t, k, step, w);
                    }
                    7 => {
                        let k = (next() % 12) as u32;
                        let _ = c.get(&k);
                    }
                    8 => c.set_tenant_quota(Some(next() % 200)),
                    _ => c.set_tenant_quota(None),
                }
                c.debug_assert_tenant_accounting();
            }
            // Post-churn: the explicit recount must also match the public
            // per-tenant view.
            let total: u64 = c.tenant_usage().iter().map(|(_, b)| b).sum();
            let per_tenant: u64 = tenants.iter().map(|t| c.tenant_bytes(t)).sum();
            assert_eq!(total, per_tenant);
            assert!(c.len() <= cap);
        }
    }

    #[test]
    fn overwrite_under_existing_key_charges_weight_exactly_once() {
        // The audit pin for the satellite: repeatedly overwriting one key
        // must leave the tenant charged for exactly the last weight, with
        // no residue from the displaced entries (same tenant or not).
        let mut c: Lru<u32, u32> = Lru::new(2);
        c.insert_weighted_for("a", 1, 10, 100);
        c.insert_weighted_for("a", 1, 11, 60);
        c.insert_weighted_for("a", 1, 12, 60);
        assert_eq!(c.tenant_bytes("a"), 60);
        // Zero-weight overwrite of the only entry: charge drops to zero
        // but the row survives while the entry lives.
        c.insert_weighted_for("a", 1, 13, 0);
        assert_eq!(c.tenant_bytes("a"), 0);
        assert_eq!(c.get(&1), Some(&13));
        // Cross-tenant overwrite transfers the whole charge.
        c.insert_weighted_for("b", 1, 14, 25);
        assert_eq!(c.tenant_bytes("a"), 0);
        assert_eq!(c.tenant_bytes("b"), 25);
        assert_eq!(c.tenant_usage(), vec![("b".to_string(), 25)]);
        c.debug_assert_tenant_accounting();
    }

    #[test]
    fn no_quota_keeps_global_lru_semantics_across_tenants() {
        let mut c: Lru<u32, u32> = Lru::new(2);
        c.insert_weighted_for("a", 1, 10, 1);
        c.insert_weighted_for("b", 2, 20, 1);
        c.insert_weighted_for("b", 3, 30, 1);
        assert!(c.get(&1).is_none(), "unquota'd cache evicts global LRU");
        assert_eq!(c.get(&2), Some(&20));
        assert_eq!(c.get(&3), Some(&30));
    }
}
