//! Bounded least-recently-used cache.
//!
//! A deliberately simple LRU: a `HashMap` of entries stamped with a
//! monotonic use tick, evicting the minimum-tick entry when full. Eviction
//! is O(capacity), which is irrelevant at the cache sizes the engine runs
//! (tens of entries, each worth milliseconds-to-seconds of decomposition
//! work). Capacity 0 disables the cache entirely: every lookup misses and
//! inserts are dropped, which is the `--cache-cap 0` reference path the
//! CLI and fuzz layers diff cached runs against.

use std::collections::HashMap;
use std::hash::Hash;

/// Hit/miss/eviction counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries displaced to make room.
    pub evictions: u64,
    /// Entries stored.
    pub inserts: u64,
}

impl CacheStats {
    /// Total lookups (hits + misses).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups that hit, in `[0, 1]`; 0 when never queried.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }

    /// `"66.7%"`-style rendering of [`CacheStats::hit_rate`], `"-"` when
    /// the cache was never queried.
    pub fn hit_rate_label(&self) -> String {
        if self.lookups() == 0 {
            "-".into()
        } else {
            format!("{:.1}%", 100.0 * self.hit_rate())
        }
    }
}

struct Entry<V> {
    value: V,
    last_used: u64,
    /// Caller-estimated resident size, for the bytes gauge (0 when the
    /// caller used plain [`Lru::insert`]).
    weight: u64,
}

/// Global-registry handles for one named cache (see DESIGN.md §12).
///
/// Hit/miss/eviction/insert counts are `Logical`: the engine touches its
/// caches in deterministic job order, so they must match across thread
/// counts. The occupancy gauges are `Runtime`: levels, not event counts.
struct LruMetrics {
    hits: sb_metrics::Counter,
    misses: sb_metrics::Counter,
    evictions: sb_metrics::Counter,
    inserts: sb_metrics::Counter,
    entries: sb_metrics::Gauge,
    bytes: sb_metrics::Gauge,
}

impl LruMetrics {
    fn new(name: &str) -> LruMetrics {
        use sb_metrics::Class::{Logical, Runtime};
        let r = sb_metrics::global();
        let series = |suffix: &str| format!("sb_engine_{name}_cache_{suffix}");
        LruMetrics {
            hits: r.counter(&series("hits"), Logical),
            misses: r.counter(&series("misses"), Logical),
            evictions: r.counter(&series("evictions"), Logical),
            inserts: r.counter(&series("inserts"), Logical),
            entries: r.gauge(&series("entries"), Runtime),
            bytes: r.gauge(&series("bytes"), Runtime),
        }
    }
}

/// A bounded LRU map.
pub struct Lru<K, V> {
    cap: usize,
    tick: u64,
    map: HashMap<K, Entry<V>>,
    stats: CacheStats,
    metrics: Option<LruMetrics>,
}

impl<K: Eq + Hash + Clone, V> Lru<K, V> {
    /// An LRU holding at most `cap` entries (0 = disabled).
    pub fn new(cap: usize) -> Lru<K, V> {
        Lru {
            cap,
            tick: 0,
            map: HashMap::new(),
            stats: CacheStats::default(),
            metrics: None,
        }
    }

    /// [`Lru::new`], additionally reporting into the global metrics
    /// registry as `sb_engine_<name>_cache_*`.
    pub fn with_metrics(cap: usize, name: &str) -> Lru<K, V> {
        Lru {
            metrics: Some(LruMetrics::new(name)),
            ..Lru::new(cap)
        }
    }

    /// Capacity this cache was built with.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn note_hit(&mut self) {
        self.stats.hits += 1;
        if let Some(m) = &self.metrics {
            m.hits.inc();
        }
    }

    fn note_miss(&mut self) {
        self.stats.misses += 1;
        if let Some(m) = &self.metrics {
            m.misses.inc();
        }
    }

    /// Look `k` up, refreshing its recency on a hit.
    pub fn get(&mut self, k: &K) -> Option<&V> {
        self.get_mut(k).map(|v| &*v)
    }

    /// Mutable lookup (same recency/statistics behavior as [`get`]).
    ///
    /// [`get`]: Lru::get
    pub fn get_mut(&mut self, k: &K) -> Option<&mut V> {
        self.tick += 1;
        let tick = self.tick;
        let hit = match self.map.get_mut(k) {
            Some(e) => {
                e.last_used = tick;
                true
            }
            None => false,
        };
        if hit {
            self.note_hit();
        } else {
            self.note_miss();
        }
        self.map.get_mut(k).map(|e| &mut e.value)
    }

    /// Snapshot of the live keys (unordered). Does not touch recency or
    /// statistics; exists for test hooks that need to walk the cache.
    pub fn keys(&self) -> Vec<K> {
        self.map.keys().cloned().collect()
    }

    /// Store `v` under `k`, evicting the least-recently-used entry when the
    /// cache is full. A no-op at capacity 0.
    pub fn insert(&mut self, k: K, v: V) {
        self.insert_weighted(k, v, 0);
    }

    /// [`Lru::insert`] with an estimated resident size in bytes, carried
    /// into the `sb_engine_<name>_cache_bytes` gauge.
    pub fn insert_weighted(&mut self, k: K, v: V, weight: u64) {
        if self.cap == 0 {
            return;
        }
        self.tick += 1;
        if !self.map.contains_key(&k) && self.map.len() >= self.cap {
            if let Some(victim) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                let evicted = self.map.remove(&victim).expect("victim key is live");
                self.stats.evictions += 1;
                if let Some(m) = &self.metrics {
                    m.evictions.inc();
                    m.bytes.sub(evicted.weight);
                }
            }
        }
        self.stats.inserts += 1;
        let displaced = self.map.insert(
            k,
            Entry {
                value: v,
                last_used: self.tick,
                weight,
            },
        );
        if let Some(m) = &self.metrics {
            m.inserts.inc();
            m.bytes.sub(displaced.map_or(0, |e| e.weight));
            m.bytes.add(weight);
            m.entries.set(self.map.len() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_accounting() {
        let mut c: Lru<u32, &str> = Lru::new(4);
        assert!(c.get(&1).is_none());
        c.insert(1, "one");
        assert_eq!(c.get(&1), Some(&"one"));
        assert_eq!(
            c.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                evictions: 0,
                inserts: 1
            }
        );
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c: Lru<u32, u32> = Lru::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.get(&1); // 2 is now the LRU entry
        c.insert(3, 30);
        assert!(c.get(&2).is_none(), "LRU entry should have been evicted");
        assert_eq!(c.get(&1), Some(&10));
        assert_eq!(c.get(&3), Some(&30));
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinserting_existing_key_does_not_evict() {
        let mut c: Lru<u32, u32> = Lru::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(1, 11);
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.get(&1), Some(&11));
        assert_eq!(c.get(&2), Some(&20));
    }

    #[test]
    fn capacity_zero_disables_storage() {
        let mut c: Lru<u32, u32> = Lru::new(0);
        c.insert(1, 10);
        assert!(c.is_empty());
        assert!(c.get(&1).is_none());
        assert_eq!(c.stats().inserts, 0);
    }
}
