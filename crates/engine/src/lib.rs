//! `sb-engine` — the cached-decomposition batch-solve engine.
//!
//! The paper's cost argument is that a light decomposition pays for itself
//! because its cost is amortized over the downstream solve. This crate
//! amortizes one step further: across *jobs*. A batch of jobs
//! (`graph × decomposition × problem × algo × arch × mode`) runs through
//! one [`Engine`], which fingerprints graphs ([`fingerprint`]), memoizes
//! parsed graphs and decompositions in bounded LRU caches ([`cache`])
//! keyed by `(fingerprint, decomposition, params, seed)`, and schedules
//! each job with its own thread pin, timeout watchdog, and trace sink
//! ([`batch`]). N jobs on one graph pay for ingestion and each distinct
//! decomposition once.
//!
//! The cached path is byte-identical to the fresh path: solver outputs are
//! pure functions of `(graph, decomposition, algo, arch, seed, mode)`, and
//! decompositions are pure functions of `(graph, params, seed)` — the
//! sb-fuzz engine axis enforces this end to end.
//!
//! Surfaces: `sbreak batch <jobs.toml>` (see [`jobs`] for the file
//! format), the `table1` bench runner (`results/BENCH_engine.json`), and
//! the library API ([`Engine::solve_on`], [`Engine::run_job`],
//! [`run_batch_compare`]).

pub mod batch;
pub mod cache;
pub mod engine;
pub mod fingerprint;
pub mod jobs;
pub mod protocol;
pub mod report;
pub mod serve;
pub mod session;

pub use batch::{run_batch_compare, BatchOptions, JobOutcome, JobRecord};
pub use cache::CacheStats;
pub use engine::{DecompSpec, EditOutcome, Engine, EngineConfig, GraphSource, Solution, Solver};
pub use fingerprint::{fingerprint_graph, fingerprint_with_edits, fingerprint_with_edits_from};
pub use jobs::{parse_jobs, JobSpec};
pub use report::BatchReport;
pub use serve::{Client, ServeConfig, Server, ServerHandle};
pub use session::{CancelToken, Session, SharedEngine};
