//! Shared-engine sessions: the concurrency layer under `sbreak serve`.
//!
//! A [`SharedEngine`] wraps one [`Engine`] in a mutex so many connections
//! can solve against the same graph/decomposition LRUs. The lock is only
//! held for cache probes and commits (microseconds); solves run on
//! detached worker threads via the probe→compute→commit pipeline in
//! [`crate::batch`], so N sessions solve concurrently while sharing every
//! cache hit. Each [`Session`] is bound to a tenant name, which is what
//! the per-tenant byte quotas in [`crate::cache::Lru`] charge against.

use crate::batch::{run_job_shared, EngineAccess};
use crate::engine::{Engine, EngineConfig};
use crate::jobs::JobSpec;
use crate::JobRecord;
use sb_trace::TraceSink;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// A cooperative cancellation flag shared between a client-facing
/// coordinator and whoever wants to abort the request. Cancelling never
/// interrupts the solver mid-computation — the detached worker keeps
/// running and its results are discarded — it releases the *coordinator*,
/// exactly like the watchdog timeout path, so caches are never poisoned.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Trip the token. Idempotent.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether [`CancelToken::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// One [`Engine`] behind a mutex, shared by every session of a server.
#[derive(Clone)]
pub struct SharedEngine {
    inner: Arc<Mutex<Engine>>,
}

impl SharedEngine {
    /// A shared engine with the given configuration.
    pub fn new(cfg: EngineConfig) -> SharedEngine {
        SharedEngine {
            inner: Arc::new(Mutex::new(Engine::new(cfg))),
        }
    }

    /// Lock the engine directly (stats snapshots, tests). Keep the hold
    /// short: every in-flight request's probe/commit serializes here.
    ///
    /// A poisoned mutex (a panic while holding the lock) is recovered
    /// rather than propagated: cache state is only ever mutated through
    /// the LRU's own methods, which keep it structurally consistent, and
    /// a serve daemon must outlive one bad request.
    pub fn lock(&self) -> MutexGuard<'_, Engine> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// A session running jobs as `tenant`.
    pub fn session(&self, tenant: &str) -> Session {
        Session {
            engine: self.clone(),
            tenant: tenant.to_string(),
        }
    }
}

impl EngineAccess for SharedEngine {
    fn with_engine<R>(&mut self, f: impl FnOnce(&mut Engine) -> R) -> R {
        f(&mut self.lock())
    }
}

/// A tenant-scoped handle onto a [`SharedEngine`].
pub struct Session {
    engine: SharedEngine,
    tenant: String,
}

impl Session {
    /// The tenant this session's cache inserts are charged to.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Run one job against the shared caches: probe under the lock, solve
    /// on a watchdogged worker with the lock released, commit under the
    /// lock only on a clean, verified finish. `deadline` bounds the wait
    /// (tighter of it and the job's own `timeout_ms`); `cancel` aborts the
    /// wait early with [`crate::JobOutcome::Cancelled`].
    pub fn run_job(
        &self,
        job: &JobSpec,
        trace: Option<Arc<TraceSink>>,
        cancel: Option<&CancelToken>,
        deadline: Option<Duration>,
    ) -> JobRecord {
        let mut engine = self.engine.clone();
        run_job_shared(&mut engine, &self.tenant, job, trace, cancel, deadline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobs::parse_jobs;
    use crate::JobOutcome;
    use std::thread;

    fn job_text(label: &str, problem: &str, algo: &str) -> String {
        format!(
            "[[job]]\nlabel = \"{label}\"\ngraph = \"gen:lp1\"\nscale = 0.05\n\
             graph_seed = 42\nseed = 11\nproblem = \"{problem}\"\nalgo = \"{algo}\"\n"
        )
    }

    fn one_job(label: &str, problem: &str, algo: &str) -> JobSpec {
        parse_jobs(&job_text(label, problem, algo), "t")
            .unwrap()
            .remove(0)
    }

    #[test]
    fn sessions_share_cache_across_tenants() {
        let shared = SharedEngine::new(EngineConfig::default());
        let a = shared.session("tenant-a");
        let b = shared.session("tenant-b");
        let job = one_job("j", "color", "degk");
        let first = a.run_job(&job, None, None, None);
        assert_eq!(first.outcome, JobOutcome::Ok);
        assert_eq!(first.decomp_cached, Some(false));
        let second = b.run_job(&job, None, None, None);
        assert_eq!(second.outcome, JobOutcome::Ok);
        assert!(second.graph_cached, "tenant b reuses tenant a's graph");
        assert_eq!(
            second.decomp_cached,
            Some(true),
            "tenant b hits tenant a's decomposition"
        );
        assert_eq!(first.solution, second.solution);
    }

    #[test]
    fn concurrent_sessions_agree_with_sequential_results() {
        let shared = SharedEngine::new(EngineConfig::default());
        let job = one_job("j", "mm", "rand:4");
        let reference = Engine::with_cap(0).run_job(&job, None);
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let session = shared.session(&format!("t{i}"));
                let job = job.clone();
                thread::spawn(move || session.run_job(&job, None, None, None))
            })
            .collect();
        for h in handles {
            let record = h.join().unwrap();
            assert_eq!(record.outcome, JobOutcome::Ok);
            assert_eq!(
                record.solution, reference.solution,
                "shared-cache result must be byte-identical to a fresh solve"
            );
        }
    }

    #[test]
    fn cancel_token_aborts_without_cache_inserts() {
        let shared = SharedEngine::new(EngineConfig::default());
        let session = shared.session("t");
        let job = one_job("j", "mm", "rand:4");
        let cancel = CancelToken::new();
        cancel.cancel();
        let record = session.run_job(&job, None, Some(&cancel), None);
        assert_eq!(record.outcome, JobOutcome::Cancelled);
        assert!(record.solution.is_none());
        let engine = shared.lock();
        assert_eq!(engine.graph_cache_stats().inserts, 0);
        assert_eq!(engine.decomp_cache_stats().inserts, 0);
    }

    #[test]
    fn deadline_expiry_reports_timeout_and_never_poisons() {
        let shared = SharedEngine::new(EngineConfig::default());
        let session = shared.session("t");
        let job = one_job("j", "mm", "rand:4");
        let record = session.run_job(&job, None, None, Some(Duration::ZERO));
        assert_eq!(record.outcome, JobOutcome::TimedOut);
        assert_eq!(shared.lock().graph_cache_stats().inserts, 0);
        // The same job with a sane budget then runs and commits.
        let record = session.run_job(&job, None, None, Some(Duration::from_secs(120)));
        assert_eq!(record.outcome, JobOutcome::Ok);
        assert_eq!(shared.lock().graph_cache_stats().inserts, 1);
    }

    #[test]
    fn tenant_quota_protects_other_tenants_through_sessions() {
        // End-to-end fairness: tiny decomp cache + byte quota; tenant "b"
        // floods distinct decompositions while "a" holds one under quota.
        let shared = SharedEngine::new(EngineConfig {
            cache_cap: 3,
            tenant_quota_bytes: Some(10_000_000),
            ..EngineConfig::default()
        });
        let a = shared.session("a");
        let b = shared.session("b");
        let job = one_job("a1", "color", "degk");
        assert_eq!(a.run_job(&job, None, None, None).outcome, JobOutcome::Ok);
        for (i, seed) in [1u64, 2, 3, 4].iter().enumerate() {
            let mut flood = one_job(&format!("b{i}"), "mm", "rand:4");
            flood.seed = *seed; // distinct RAND seeds → distinct decomp keys
            assert_eq!(b.run_job(&flood, None, None, None).outcome, JobOutcome::Ok);
        }
        // Tenant a's decomposition must still be resident: the same job
        // again is a cache hit.
        let again = a.run_job(&job, None, None, None);
        assert_eq!(
            again.decomp_cached,
            Some(true),
            "flooding tenant evicted a protected tenant's entry"
        );
    }
}
