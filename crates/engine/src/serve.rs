//! `sbreak serve` — a resident multi-tenant solve service.
//!
//! One process holds one [`SharedEngine`] (graph + decomposition LRUs with
//! per-tenant byte quotas) and accepts JSONL requests over TCP (see
//! [`crate::protocol`]). Connections are cheap reader threads; solves are
//! executed by a fixed pool of `workers` threads fed from a **bounded**
//! queue — when the queue is full the request is rejected immediately with
//! an `overloaded` response (admission control) instead of building an
//! unbounded backlog. Deadlines are measured from admission, so a request
//! that waited out its budget in the queue is answered `timeout` without
//! ever spawning a solve; cancellation releases the coordinator exactly
//! like the batch watchdog does, so neither path can poison the caches.
//!
//! The `stats` op exports the sb-metrics cache counters, per-tenant byte
//! usage, and sb-trace per-phase latency percentiles aggregated across all
//! completed solves; its shape is pinned by the golden-output tests.
//!
//! Everything here is std-only networking: loopback TCP, line-buffered,
//! no external dependencies, so the whole service builds offline.

use crate::cache::CacheStats;
use crate::engine::{EngineConfig, GraphSource, Solution, Solver};
use crate::jobs::JobSpec;
use crate::protocol::{
    ack_response_json, cancel_ack_json, cancelled_response_json, error_response_json,
    mutate_response_json, overloaded_response_json, parse_request, solve_response_json,
    timeout_response_json, MutateParams, Reply, Request, SolveParams,
};
use crate::session::{CancelToken, SharedEngine};
use crate::{JobOutcome, JobRecord};
use sb_core::common::SolveOpts;
use sb_core::repair;
use sb_graph::csr::Graph;
use sb_graph::editlog::EditLog;
use sb_par::exec::with_threads;
use sb_trace::{span_durations, TraceSink};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{self, BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// How long blocking reads and drains wait before re-checking the
/// shutdown flag.
const POLL: Duration = Duration::from_millis(100);

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port (see [`ServerHandle::addr`]).
    pub addr: String,
    /// Solve worker threads. Connections beyond this share the pool.
    pub workers: usize,
    /// Bound on the admission queue; a solve arriving with the queue full
    /// is answered `overloaded` immediately.
    pub queue_cap: usize,
    /// Configuration for the shared engine (cache caps, tenant quotas).
    pub engine: EngineConfig,
    /// Deadline applied to solves that don't carry their own
    /// `deadline_ms`. `None` = wait forever.
    pub default_deadline_ms: Option<u64>,
    /// Thread pin applied to solves that don't carry their own `threads`.
    pub default_threads: Option<usize>,
    /// Honor the `debug_sleep_ms` test hook. Integration tests only;
    /// a production server rejects the field as a bad request.
    pub allow_debug: bool,
    /// Bound on resident mutation streams. Admitting a mutate that would
    /// push the stream table past this evicts the least-recently-touched
    /// idle stream (its next mutate re-primes with a fresh solve), so the
    /// table cannot grow without bound under tenant churn.
    pub max_streams: usize,
    /// Once a mutation stream's accumulated edit log reaches this many
    /// edits, the commit rebases the stream: the materialized edited
    /// graph becomes the stream's new base and the log restarts empty.
    /// Keeps per-mutate fingerprinting and cache-miss re-materialization
    /// O(rebase window), not O(stream lifetime).
    pub rebase_log_edits: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_cap: 64,
            engine: EngineConfig::default(),
            default_deadline_ms: None,
            default_threads: None,
            allow_debug: false,
            max_streams: 256,
            rebase_log_edits: 1024,
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A connection's write half, shared between its reader thread (control
/// responses) and whichever worker finishes its solves. One response is
/// one line; the mutex keeps lines whole under interleaving.
struct ConnWriter {
    stream: Mutex<TcpStream>,
}

impl ConnWriter {
    fn send(&self, line: &str) {
        let mut s = lock(&self.stream);
        // A dead peer is not the server's problem: the solve already
        // committed (or not) before we got here.
        let _ = s.write_all(line.as_bytes());
        let _ = s.write_all(b"\n");
        let _ = s.flush();
    }
}

/// One admitted solve or mutate waiting for a worker.
struct QueuedJob {
    writer: Arc<ConnWriter>,
    conn_id: u64,
    params: SolveParams,
    /// `Some(batch)` makes this a mutate: the edit batch to stream into
    /// the tenant's solver stream before repairing its solution.
    edits: Option<EditLog>,
    job: JobSpec,
    enqueued: Instant,
    deadline: Option<Duration>,
    cancel: CancelToken,
}

/// Monotone response counters for the `stats` op.
#[derive(Default)]
struct Counts {
    received: AtomicU64,
    ok: AtomicU64,
    failed: AtomicU64,
    bad_request: AtomicU64,
    overloaded: AtomicU64,
    timeout: AtomicU64,
    cancelled: AtomicU64,
}

/// Monotone repair counters for the `stats` op's `repairs` block.
#[derive(Default)]
struct RepairCounts {
    /// Mutate requests admitted to a worker.
    requests: AtomicU64,
    /// Mutates answered by repairing a prior solution.
    repaired: AtomicU64,
    /// Mutates answered by a fresh solve (stream priming).
    fresh: AtomicU64,
    /// Individual edits applied across all mutates.
    edits_applied: AtomicU64,
    /// Cached decompositions patched across edits.
    decomps_patched: AtomicU64,
    /// Streams rebased onto their materialized graph (log reset).
    rebases: AtomicU64,
    /// Idle streams evicted to honor `max_streams`.
    streams_evicted: AtomicU64,
}

/// Per-stream mutation state. A stream is one tenant's edit history
/// against one `(graph, solver config, seed)`: the edits since the last
/// rebase, the materialized edited graph they produced, and the solution
/// to repair from on the next batch. Streams are keyed by tenant, so one
/// tenant's edits can never leak into another's solutions even when both
/// caches share the underlying base graph.
#[derive(Clone)]
struct MutationState {
    /// The stream's current base graph: the source graph at first, then
    /// whatever the last rebase materialized.
    base: Arc<Graph>,
    /// `base`'s engine fingerprint, carried so a rebased (heap) base is
    /// never re-hashed O(m) per mutate.
    base_fp: u64,
    /// Edit log accumulated since `base` (in arrival order). Bounded by
    /// `rebase_log_edits`: a commit that crosses the threshold adopts the
    /// materialized graph as the new `base` and clears this.
    log: EditLog,
    /// The materialized `base + log` graph (shared with the graph cache).
    /// Its cache fingerprint is not stored: `apply_edits_from` re-derives
    /// it from `(base_fp, log)` on every batch.
    graph: Arc<Graph>,
    /// The solution for `graph` — the repair seed for the next batch.
    prior: Solution,
    /// Cumulative edit count (for the response's `edits_total`).
    edits_total: u64,
}

/// Stream key: `(tenant, graph cache key, config#seed)`.
type StreamKey = (String, String, String);

/// One mutation stream's slot in the stream table. The inner mutex
/// serializes the whole read-compute-commit of a mutate, so pipelined
/// mutates on the same stream can never both read the same prior and
/// lose an acknowledged batch (same-stream requests queue on the slot;
/// distinct streams stay parallel across workers).
#[derive(Default)]
struct StreamSlot {
    /// `None` until the stream's first committed mutate.
    state: Mutex<Option<MutationState>>,
    /// Last-touched stamp from `Shared::stream_clock`, for idle-stream
    /// eviction. Written only under the stream-table lock.
    touched: AtomicU64,
}

/// Latency samples aggregated across completed solves.
#[derive(Default)]
struct LatencyAgg {
    /// End-to-end wall clock of `ok` solves, milliseconds.
    wall_ms: Vec<f64>,
    /// Per-phase durations from each solve's trace, microseconds.
    phases_us: BTreeMap<String, Vec<u64>>,
}

const MAX_SAMPLES: usize = 65_536;

/// Global-registry handles for the serve surface (`sbreak profile`).
/// All `Runtime`: arrival order and queue occupancy depend on scheduling.
struct ServeMetrics {
    requests: sb_metrics::Counter,
    overloaded: sb_metrics::Counter,
    timeouts: sb_metrics::Counter,
    queue_depth: sb_metrics::Gauge,
}

impl ServeMetrics {
    fn new() -> ServeMetrics {
        use sb_metrics::Class::Runtime;
        let r = sb_metrics::global();
        ServeMetrics {
            requests: r.counter("sb_serve_requests", Runtime),
            overloaded: r.counter("sb_serve_overloaded", Runtime),
            timeouts: r.counter("sb_serve_timeouts", Runtime),
            queue_depth: r.gauge("sb_serve_queue_depth", Runtime),
        }
    }
}

/// State shared by the listener, connection readers, and solve workers.
struct Shared {
    cfg: ServeConfig,
    addr: SocketAddr,
    engine: SharedEngine,
    queue: Mutex<VecDeque<QueuedJob>>,
    available: Condvar,
    shutdown: AtomicBool,
    counts: Counts,
    latency: Mutex<LatencyAgg>,
    /// Cancel tokens for in-flight solves, keyed by `(connection, id)` so
    /// a `cancel` op can only reach requests from its own connection.
    pending: Mutex<HashMap<(u64, String), CancelToken>>,
    /// Mutation streams for the `mutate` op, keyed per tenant. Bounded by
    /// `cfg.max_streams` (idle streams are evicted LRU on admission).
    mutations: Mutex<HashMap<StreamKey, Arc<StreamSlot>>>,
    /// Monotone stamp source for `StreamSlot::touched`.
    stream_clock: AtomicU64,
    repairs: RepairCounts,
    conns: Mutex<Vec<JoinHandle<()>>>,
    metrics: ServeMetrics,
    started: Instant,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Trip the shutdown flag once: wake every worker and kick the
    /// listener out of `accept` with a throwaway self-connection.
    fn begin_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::AcqRel) {
            self.available.notify_all();
            let _ = TcpStream::connect(self.addr);
        }
    }

    fn clear_pending(&self, conn_id: u64, id: &str) {
        if !id.is_empty() {
            lock(&self.pending).remove(&(conn_id, id.to_string()));
        }
    }

    /// Sleep in shutdown/cancel-aware slices (the `debug_sleep_ms` hook).
    fn debug_sleep(&self, ms: u64, cancel: &CancelToken) {
        let until = Instant::now() + Duration::from_millis(ms);
        loop {
            if self.shutting_down() || cancel.is_cancelled() {
                return;
            }
            let left = until.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return;
            }
            thread::sleep(left.min(Duration::from_millis(10)));
        }
    }

    /// Admit or reject one solve or mutate (`edits: Some`). Called on the
    /// connection thread, so it must never block on anything but the
    /// queue mutex.
    fn admit(
        self: &Arc<Shared>,
        writer: &Arc<ConnWriter>,
        conn_id: u64,
        p: SolveParams,
        edits: Option<EditLog>,
    ) {
        self.counts.received.fetch_add(1, Ordering::Relaxed);
        self.metrics.requests.inc();
        if p.debug_sleep_ms > 0 && !self.cfg.allow_debug {
            self.counts.bad_request.fetch_add(1, Ordering::Relaxed);
            writer.send(&error_response_json(
                &p.id,
                "bad_request",
                "debug_sleep_ms requires a debug-enabled server",
            ));
            return;
        }
        // Parsed once already (protocol rejects malformed specs), so this
        // cannot fail here.
        let mut job = match p.to_job_spec() {
            Ok(job) => job,
            Err(e) => {
                self.counts.bad_request.fetch_add(1, Ordering::Relaxed);
                writer.send(&error_response_json(&p.id, "bad_request", &e));
                return;
            }
        };
        if job.threads.is_none() {
            job.threads = self.cfg.default_threads;
        }
        let deadline = p
            .deadline_ms
            .or(self.cfg.default_deadline_ms)
            .map(Duration::from_millis);
        let mut q = lock(&self.queue);
        if self.shutting_down() {
            writer.send(&error_response_json(
                &p.id,
                "shutting_down",
                "server is shutting down",
            ));
            return;
        }
        if q.len() >= self.cfg.queue_cap {
            drop(q);
            self.counts.overloaded.fetch_add(1, Ordering::Relaxed);
            self.metrics.overloaded.inc();
            writer.send(&overloaded_response_json(
                &p.id,
                self.cfg.queue_cap,
                self.cfg.queue_cap,
            ));
            return;
        }
        let cancel = CancelToken::new();
        if !p.id.is_empty() {
            lock(&self.pending).insert((conn_id, p.id.clone()), cancel.clone());
        }
        q.push_back(QueuedJob {
            writer: writer.clone(),
            conn_id,
            params: p,
            edits,
            job,
            enqueued: Instant::now(),
            deadline,
            cancel,
        });
        self.metrics.queue_depth.inc();
        drop(q);
        self.available.notify_one();
    }

    /// Worker side: run one dequeued job end to end and answer its
    /// connection.
    fn process(&self, item: QueuedJob) {
        self.metrics.queue_depth.dec();
        let QueuedJob {
            writer,
            conn_id,
            params,
            edits,
            job,
            enqueued,
            deadline,
            cancel,
        } = item;
        let done = |counter: &AtomicU64, line: String| {
            counter.fetch_add(1, Ordering::Relaxed);
            writer.send(&line);
            self.clear_pending(conn_id, &params.id);
        };
        if self.shutting_down() {
            return done(
                &self.counts.failed,
                error_response_json(&params.id, "shutting_down", "server is shutting down"),
            );
        }
        if cancel.is_cancelled() {
            return done(
                &self.counts.cancelled,
                cancelled_response_json(&params.id, "cancelled while queued"),
            );
        }
        if params.debug_sleep_ms > 0 {
            self.debug_sleep(params.debug_sleep_ms, &cancel);
        }
        // The deadline spans queue wait + solve: hand the session only
        // what's left, and skip the solve entirely if nothing is.
        let waited = enqueued.elapsed();
        let remaining = deadline.map(|d| d.saturating_sub(waited));
        if remaining.as_ref().is_some_and(|r| r.is_zero()) {
            self.metrics.timeouts.inc();
            return done(
                &self.counts.timeout,
                timeout_response_json(
                    &params.id,
                    &format!("deadline expired after {} ms in queue", waited.as_millis()),
                ),
            );
        }
        let queue_ms = waited.as_secs_f64() * 1e3;
        if let Some(batch) = &edits {
            let (counter, line) = self.run_mutate(&params, &job, batch, &cancel, queue_ms);
            return done(counter, line);
        }
        let sink = Arc::new(TraceSink::enabled());
        let session = self.engine.session(&params.tenant);
        let record = session.run_job(&job, Some(sink.clone()), Some(&cancel), remaining);
        let counter = match &record.outcome {
            crate::JobOutcome::Ok => {
                let mut agg = lock(&self.latency);
                if agg.wall_ms.len() < MAX_SAMPLES {
                    agg.wall_ms.push(record.wall_ms);
                }
                for (phase, us) in span_durations(&sink.events()) {
                    let samples = agg.phases_us.entry(phase).or_default();
                    if samples.len() < MAX_SAMPLES {
                        samples.push(us);
                    }
                }
                &self.counts.ok
            }
            crate::JobOutcome::TimedOut => {
                self.metrics.timeouts.inc();
                &self.counts.timeout
            }
            crate::JobOutcome::Cancelled => &self.counts.cancelled,
            crate::JobOutcome::Failed(_) => &self.counts.failed,
        };
        done(
            counter,
            solve_response_json(&params.id, &record, queue_ms, params.want_solution),
        );
    }

    /// Fetch (or create) the slot for `key`, stamp it touched, and evict
    /// least-recently-touched *idle* streams if the table outgrew
    /// `max_streams`. A slot is idle exactly when the table holds its
    /// only reference (`strong_count == 1`): slots are only ever cloned
    /// out of the table under this same lock, so an in-flight mutate —
    /// computing or merely queued on the slot mutex — is never evicted
    /// from under itself.
    fn stream_slot(&self, key: StreamKey) -> Arc<StreamSlot> {
        let cap = self.cfg.max_streams.max(1);
        let mut map = lock(&self.mutations);
        let slot = map.entry(key).or_default().clone();
        slot.touched.store(
            self.stream_clock.fetch_add(1, Ordering::Relaxed),
            Ordering::Relaxed,
        );
        while map.len() > cap {
            let victim = map
                .iter()
                .filter(|(_, s)| Arc::strong_count(s) == 1)
                .min_by_key(|(_, s)| s.touched.load(Ordering::Relaxed))
                .map(|(k, _)| k.clone());
            let Some(victim) = victim else {
                break; // every stream is in flight; stay over cap briefly
            };
            map.remove(&victim);
            self.repairs.streams_evicted.fetch_add(1, Ordering::Relaxed);
        }
        slot
    }

    /// Worker side of the `mutate` op: append `edits` to the tenant's
    /// stream for `(graph, config, seed)`, repair the stream's prior
    /// solution across the batch (or prime the stream with a fresh solve
    /// on the first mutate), and commit the advanced stream state only on
    /// a clean, uncancelled finish. Returns the response counter to bump
    /// and the response line.
    ///
    /// The stream's slot mutex is held across the whole
    /// read-compute-commit, so concurrent workers draining pipelined
    /// mutates of one stream serialize instead of racing: without it, two
    /// batches could read the same prior state and the later commit would
    /// silently drop the earlier acknowledged batch.
    ///
    /// Cancellation discipline mirrors the batch watchdog: a cancel
    /// observed at the commit gate discards the new stream state — the
    /// stream stays at its previous position and the batch can be
    /// resubmitted. Whatever the edit landed in the shared caches
    /// (the materialized graph, patched decompositions) is valid data
    /// under its own `(base, edit log)` key, so leaving it is a warm
    /// cache, not poison.
    fn run_mutate(
        &self,
        params: &SolveParams,
        job: &JobSpec,
        edits: &EditLog,
        cancel: &CancelToken,
        queue_ms: f64,
    ) -> (&AtomicU64, String) {
        self.repairs.requests.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        let fail = |detail: String| {
            (
                &self.counts.failed,
                error_response_json(&params.id, "failed", &detail),
            )
        };
        let src = match GraphSource::parse(&job.graph, job.scale, job.effective_graph_seed()) {
            Ok(src) => src,
            Err(e) => return fail(e),
        };
        let src_key = src.key();
        let config = format!("{}@{}/{}", job.solver.label(), job.arch, job.frontier);
        let stream_key: StreamKey = (
            params.tenant.clone(),
            src_key.clone(),
            format!("{config}#{}", job.seed),
        );
        // Serialize against other mutates of the same stream for the rest
        // of this function: the commit below must only ever extend the
        // state read here.
        let slot = self.stream_slot(stream_key);
        let mut stream = lock(&slot.state);
        let prev = stream.clone();
        // The stream carries its own base (the source graph until the
        // first rebase, the last rebase's materialization after). Only
        // the first touch of a stream loads the source through the shared
        // graph cache — a resident tenant never re-reads it.
        let (base, base_fp, graph_cached) = match &prev {
            Some(st) => (st.base.clone(), st.base_fp, true),
            None => match self.engine.lock().graph(&src) {
                Ok(t) => t,
                Err(e) => return fail(e),
            },
        };
        let mut accumulated = prev.as_ref().map(|s| s.log.clone()).unwrap_or_default();
        accumulated.extend(edits);
        // Materialize `base + accumulated` (memoized) and carry the base's
        // cached decompositions across to the new fingerprint.
        let out = self
            .engine
            .lock()
            .apply_edits_from(&params.tenant, &base, base_fp, &accumulated);
        let sink = Arc::new(TraceSink::enabled());
        let opts = SolveOpts {
            trace: Some(sink.clone()),
            frontier: job.frontier,
        };
        // Repair from the prior when the stream has one. The stream key
        // pins the solver family, so the prior's variant always matches;
        // the defensive fallback below re-solves rather than panicking a
        // worker if it ever did not.
        let repair_run = prev.as_ref().and_then(|st| match (&st.prior, job.solver) {
            (Solution::Mate(mate), Solver::Mm(_)) => {
                let r = repair::repair_matching(&st.graph, edits, mate, &opts);
                Some((Solution::Mate(r.mate), r.stats))
            }
            (Solution::Color(color), Solver::Color(_)) => {
                let r = repair::repair_coloring(&st.graph, edits, color, &opts);
                Some((Solution::Color(r.color), r.stats))
            }
            (Solution::Set(in_set), Solver::Mis(_)) => {
                let r = repair::repair_mis(&st.graph, edits, in_set, &opts);
                Some((Solution::Set(r.in_set), r.stats))
            }
            _ => None,
        });
        let repaired = repair_run.is_some();
        let (solution, stats, decomp_cached) = match repair_run {
            Some((solution, stats)) => (solution, stats, None),
            None => {
                let solve = || {
                    self.engine.lock().solve_on_fingerprinted(
                        &out.graph,
                        out.fingerprint,
                        job.solver,
                        job.arch,
                        job.seed,
                        &opts,
                    )
                };
                let o = match job.threads {
                    Some(t) => with_threads(t, solve),
                    None => solve(),
                };
                (o.solution, o.stats, o.decomp_cached)
            }
        };
        // Commit gate: advance the stream only if nobody cancelled while
        // we computed. The slot guard drops on the early return, so the
        // stream stays exactly where the cancelled batch found it.
        if self.shutting_down() || cancel.is_cancelled() {
            return (
                &self.counts.cancelled,
                cancelled_response_json(&params.id, "cancelled before commit"),
            );
        }
        let edits_total = prev.map_or(0, |s| s.edits_total) + edits.len() as u64;
        let bump = |c: &AtomicU64, n: u64| c.fetch_add(n, Ordering::Relaxed);
        // Rebase once the window fills: the materialized graph becomes
        // the stream's base and the log restarts, so fingerprinting and
        // re-materialization stay O(window) for arbitrarily old streams.
        let (base, base_fp, log) = if accumulated.len() >= self.cfg.rebase_log_edits.max(1) {
            bump(&self.repairs.rebases, 1);
            (out.graph.clone(), out.fingerprint, EditLog::new())
        } else {
            (base, base_fp, accumulated)
        };
        *stream = Some(MutationState {
            base,
            base_fp,
            log,
            graph: out.graph.clone(),
            prior: solution.clone(),
            edits_total,
        });
        drop(stream);
        bump(if repaired {
            &self.repairs.repaired
        } else {
            &self.repairs.fresh
        }, 1);
        bump(&self.repairs.edits_applied, edits.len() as u64);
        bump(&self.repairs.decomps_patched, out.decomps_patched as u64);
        let record = JobRecord {
            label: if params.id.is_empty() {
                "mutate".into()
            } else {
                params.id.clone()
            },
            graph: src_key,
            config,
            seed: job.seed,
            outcome: JobOutcome::Ok,
            detail: solution.summary(),
            graph_cached,
            decomp_cached,
            decompose_ms: stats.decompose_time.as_secs_f64() * 1e3,
            solve_ms: stats.solve_time.as_secs_f64() * 1e3,
            wall_ms: started.elapsed().as_secs_f64() * 1e3,
            fresh_wall_ms: None,
            solution: Some(solution),
        };
        {
            let mut agg = lock(&self.latency);
            if agg.wall_ms.len() < MAX_SAMPLES {
                agg.wall_ms.push(record.wall_ms);
            }
            for (phase, us) in span_durations(&sink.events()) {
                let samples = agg.phases_us.entry(phase).or_default();
                if samples.len() < MAX_SAMPLES {
                    samples.push(us);
                }
            }
        }
        (
            &self.counts.ok,
            mutate_response_json(
                &params.id,
                &record,
                queue_ms,
                params.want_solution,
                repaired,
                edits.len() as u64,
                edits_total,
                out.decomps_patched as u64,
            ),
        )
    }

    /// Render the `stats` response. Values change run to run; the *shape*
    /// is pinned by the golden tests.
    fn stats_json(&self) -> String {
        let c = &self.counts;
        let count = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let (graph_stats, decomp_stats, tenants) = {
            let engine = self.engine.lock();
            let mut tenants: BTreeMap<String, (u64, u64)> = BTreeMap::new();
            for (tenant, bytes) in engine.graphs.tenant_usage() {
                tenants.entry(tenant).or_default().0 = bytes;
            }
            for (tenant, bytes) in engine.decomps.tenant_usage() {
                tenants.entry(tenant).or_default().1 = bytes;
            }
            (
                engine.graph_cache_stats(),
                engine.decomp_cache_stats(),
                tenants,
            )
        };
        let cache = |s: &CacheStats| {
            format!(
                "{{\"hits\":{},\"misses\":{},\"inserts\":{},\"evictions\":{},\"hit_rate\":{:.4}}}",
                s.hits,
                s.misses,
                s.inserts,
                s.evictions,
                s.hit_rate()
            )
        };
        let tenants = tenants
            .iter()
            .map(|(t, (g, d))| {
                format!(
                    "{{\"tenant\":\"{}\",\"graph_bytes\":{g},\"decomp_bytes\":{d}}}",
                    sb_metrics::escape_json(t)
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let agg = lock(&self.latency);
        let phases = agg
            .phases_us
            .iter()
            .map(|(phase, samples)| {
                let mut sorted = samples.clone();
                sorted.sort_unstable();
                format!(
                    "\"{}\":{{\"count\":{},\"p50_us\":{},\"p99_us\":{},\"max_us\":{}}}",
                    sb_metrics::escape_json(phase),
                    sorted.len(),
                    percentile_u64(&sorted, 0.50),
                    percentile_u64(&sorted, 0.99),
                    sorted.last().copied().unwrap_or(0)
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let mut wall = agg.wall_ms.clone();
        drop(agg);
        wall.sort_by(|a, b| a.total_cmp(b));
        format!(
            "{{\"status\":\"ok\",\"op\":\"stats\",\"uptime_ms\":{},\
             \"workers\":{},\"queue_cap\":{},\"queue_depth\":{},\
             \"requests\":{{\"received\":{},\"ok\":{},\"error\":{},\"bad_request\":{},\
             \"overloaded\":{},\"timeout\":{},\"cancelled\":{}}},\
             \"repairs\":{{\"requests\":{},\"repaired\":{},\"fresh\":{},\
             \"edits_applied\":{},\"decomps_patched\":{},\"rebases\":{},\
             \"evicted\":{},\"streams\":{}}},\
             \"solve_wall_ms\":{{\"count\":{},\"p50\":{:.3},\"p99\":{:.3}}},\
             \"graph_cache\":{},\"decomp_cache\":{},\
             \"tenants\":[{}],\"phase_latency_us\":{{{}}}}}",
            self.started.elapsed().as_millis(),
            self.cfg.workers,
            self.cfg.queue_cap,
            lock(&self.queue).len(),
            count(&c.received),
            count(&c.ok),
            count(&c.failed),
            count(&c.bad_request),
            count(&c.overloaded),
            count(&c.timeout),
            count(&c.cancelled),
            count(&self.repairs.requests),
            count(&self.repairs.repaired),
            count(&self.repairs.fresh),
            count(&self.repairs.edits_applied),
            count(&self.repairs.decomps_patched),
            count(&self.repairs.rebases),
            count(&self.repairs.streams_evicted),
            lock(&self.mutations).len(),
            wall.len(),
            percentile_f64(&wall, 0.50),
            percentile_f64(&wall, 0.99),
            cache(&graph_stats),
            cache(&decomp_stats),
            tenants,
            phases,
        )
    }
}

/// Nearest-rank percentile over a sorted slice (0 for empty input).
pub fn percentile_u64(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Nearest-rank percentile over a sorted slice (0.0 for empty input).
pub fn percentile_f64(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// The serve daemon. [`Server::spawn`] binds, starts the worker pool and
/// listener, and returns a [`ServerHandle`].
pub struct Server;

impl Server {
    /// Bind `cfg.addr` and start serving. Returns once the listener is
    /// accepting; solves run until [`ServerHandle::shutdown`] or a client
    /// `shutdown` op.
    pub fn spawn(cfg: ServeConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let workers = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            engine: SharedEngine::new(cfg.engine),
            cfg,
            addr,
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            counts: Counts::default(),
            latency: Mutex::new(LatencyAgg::default()),
            pending: Mutex::new(HashMap::new()),
            mutations: Mutex::new(HashMap::new()),
            stream_clock: AtomicU64::new(0),
            repairs: RepairCounts::default(),
            conns: Mutex::new(Vec::new()),
            metrics: ServeMetrics::new(),
            started: Instant::now(),
        });
        let worker_handles = (0..workers)
            .map(|_| {
                let shared = shared.clone();
                thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let listener_handle = {
            let shared = shared.clone();
            thread::spawn(move || listen_loop(&shared, &listener))
        };
        Ok(ServerHandle {
            addr,
            shared,
            listener: Some(listener_handle),
            workers: worker_handles,
        })
    }
}

/// A running server: its bound address and the levers to stop it.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    listener: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared engine, for inspecting cache state in tests.
    pub fn engine(&self) -> SharedEngine {
        self.shared.engine.clone()
    }

    /// Trip shutdown: stop accepting, drain the queue with
    /// `shutting_down` responses, stop the workers. Idempotent.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Block until the server stops — via [`ServerHandle::shutdown`] or a
    /// client `shutdown` op — then join every thread.
    pub fn join(mut self) {
        if let Some(listener) = self.listener.take() {
            let _ = listener.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        let conns = std::mem::take(&mut *lock(&self.shared.conns));
        for h in conns {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let mut q = lock(&shared.queue);
        let job = loop {
            if let Some(job) = q.pop_front() {
                break Some(job);
            }
            if shared.shutting_down() {
                break None;
            }
            q = shared
                .available
                .wait(q)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        };
        drop(q);
        match job {
            Some(job) => shared.process(job),
            None => return,
        }
    }
}

fn listen_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    let mut next_conn = 0u64;
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutting_down() {
                    return;
                }
                continue;
            }
        };
        if shared.shutting_down() {
            // The wake-up kick from begin_shutdown, or a late client.
            return;
        }
        let conn_id = next_conn;
        next_conn += 1;
        let shared2 = shared.clone();
        let handle = thread::spawn(move || serve_connection(&shared2, stream, conn_id));
        lock(&shared.conns).push(handle);
    }
}

/// Read JSONL requests off one connection until EOF or shutdown.
fn serve_connection(shared: &Arc<Shared>, stream: TcpStream, conn_id: u64) {
    // A finite read timeout lets the reader observe shutdown without a
    // request arriving. No Nagle: responses are single small lines and
    // the client is blocked on them.
    let _ = stream.set_read_timeout(Some(POLL));
    let _ = stream.set_nodelay(true);
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(ConnWriter {
            stream: Mutex::new(w),
        }),
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if shared.shutting_down() {
            break;
        }
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                handle_line(shared, &writer, conn_id, line.trim());
                line.clear();
            }
            // Timed out mid-wait (or mid-line: whatever was read stays in
            // `line` and the next read appends to it — framing holds).
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => continue,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
    // The peer is gone (or we're stopping): release any of its solves
    // still queued or running. Workers discard cancelled work unsent.
    let mut pending = lock(&shared.pending);
    pending.retain(|(cid, _), token| {
        if *cid == conn_id {
            token.cancel();
            false
        } else {
            true
        }
    });
}

fn handle_line(shared: &Arc<Shared>, writer: &Arc<ConnWriter>, conn_id: u64, line: &str) {
    if line.is_empty() {
        return;
    }
    match parse_request(line) {
        Err(detail) => {
            // Best-effort id echo so a pipelining client can correlate
            // the rejection.
            let id = sb_metrics::parse_json_value(line)
                .ok()
                .and_then(|v| v.get("id").and_then(|i| i.as_str().map(String::from)))
                .unwrap_or_default();
            shared.counts.bad_request.fetch_add(1, Ordering::Relaxed);
            writer.send(&error_response_json(&id, "bad_request", &detail));
        }
        Ok(Request::Ping) => writer.send(&ack_response_json("ping")),
        Ok(Request::Stats) => writer.send(&shared.stats_json()),
        Ok(Request::Cancel { id }) => {
            let found = lock(&shared.pending)
                .get(&(conn_id, id.clone()))
                .map(|token| token.cancel())
                .is_some();
            writer.send(&cancel_ack_json(&id, found));
        }
        Ok(Request::Shutdown) => {
            writer.send(&ack_response_json("shutdown"));
            shared.begin_shutdown();
        }
        Ok(Request::Solve(p)) => shared.admit(writer, conn_id, *p, None),
        Ok(Request::Mutate(m)) => match m.edit_log() {
            // Validated at parse time, so the error arm is unreachable in
            // practice; answer it typed anyway rather than panicking.
            Ok(edits) => shared.admit(writer, conn_id, m.solve, Some(edits)),
            Err(detail) => {
                shared.counts.bad_request.fetch_add(1, Ordering::Relaxed);
                writer.send(&error_response_json(&m.solve.id, "bad_request", &detail));
            }
        },
    }
}

/// A blocking JSONL client for [`Server`] — used by `sbreak loadgen`, the
/// integration tests, and the fuzz serve axis.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to a serve daemon.
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Send one raw request line.
    pub fn send_line(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Block for the next response line.
    pub fn recv(&mut self) -> Result<Reply, String> {
        let mut line = String::new();
        loop {
            match self.reader.read_line(&mut line) {
                Ok(0) => return Err("server closed the connection".into()),
                Ok(_) => {
                    let trimmed = line.trim();
                    if trimmed.is_empty() {
                        line.clear();
                        continue;
                    }
                    return Reply::parse(trimmed);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(format!("read error: {e}")),
            }
        }
    }

    /// Send one line and block for one response.
    pub fn request(&mut self, line: &str) -> Result<Reply, String> {
        self.send_line(line)
            .map_err(|e| format!("write error: {e}"))?;
        self.recv()
    }

    /// Run one solve to completion.
    pub fn solve(&mut self, params: &SolveParams) -> Result<Reply, String> {
        self.request(&params.to_json())
    }

    /// Stream one edit batch into a solver stream and block for the
    /// repaired (or stream-priming) solution.
    pub fn mutate(&mut self, params: &MutateParams) -> Result<Reply, String> {
        self.request(&params.to_json())
    }

    /// Fetch the server's statistics document.
    pub fn stats(&mut self) -> Result<Reply, String> {
        self.request("{\"op\":\"stats\"}")
    }

    /// Liveness round-trip.
    pub fn ping(&mut self) -> Result<Reply, String> {
        self.request("{\"op\":\"ping\"}")
    }

    /// Ask the server to shut down (acknowledged before it stops).
    pub fn shutdown(&mut self) -> Result<Reply, String> {
        self.request("{\"op\":\"shutdown\"}")
    }
}
