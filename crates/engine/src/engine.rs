//! The engine proper: graph sources, decomposition specs, the two LRU
//! caches, and the cached solve path.

use crate::cache::{CacheStats, Lru};
use crate::fingerprint::{self, fingerprint_graph, fingerprint_with_edits_from};
use sb_core::coloring::{decomp as color_decomp, ColorAlgorithm};
use sb_core::common::{Arch, FrontierMode, RunStats, SolveOpts};
use sb_core::matching::{decomp as mm_decomp, MmAlgorithm};
use sb_core::mis::{decomp as mis_decomp, MisAlgorithm};
use sb_core::verify;
use sb_datasets::suite::{generate, spec, GraphId, Scale};
use sb_decompose::bicc::{decompose_bicc, BiccDecomposition};
use sb_decompose::bridge::{decompose_bridge, BridgeDecomposition};
use sb_decompose::degk::{decompose_degk, DegkDecomposition};
use sb_decompose::rand_part::{decompose_rand, RandDecomposition};
use sb_graph::csr::{Graph, INVALID};
use sb_graph::editlog::{EditLog, Overlay};
use sb_par::counters::{Counters, Stopwatch};
use sb_par::rng::{bounded, hash2};
use sb_trace::TraceSink;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Where a job's graph comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphSource {
    /// A Table II stand-in generated at the given scale factor and seed.
    Gen {
        /// Registry entry.
        id: GraphId,
        /// Registry name (`lp1`, `web-Google`, …).
        name: String,
        /// Multiplier on the default vertex budget.
        scale: f64,
        /// Generation seed.
        seed: u64,
    },
    /// An edge-list or Matrix-Market file on disk.
    File(PathBuf),
    /// A graph carried inline in the source string itself
    /// (`inline:<n>:<u>-<v>,<u>-<v>,...`). This is the wire form `sbreak
    /// serve` clients and the fuzz serve axis use to ship exact graphs —
    /// vertex count included, so trailing isolated vertices survive —
    /// without touching the filesystem.
    Inline {
        /// Vertex count.
        n: usize,
        /// Undirected edge list.
        edges: Vec<(u32, u32)>,
    },
}

impl GraphSource {
    /// Render `(n, edges)` in the `inline:` source-string form accepted by
    /// [`GraphSource::parse`].
    pub fn encode_inline(n: usize, edges: &[(u32, u32)]) -> String {
        let body: Vec<String> = edges.iter().map(|(u, v)| format!("{u}-{v}")).collect();
        format!("inline:{n}:{}", body.join(","))
    }

    /// Parse a job's `graph` field: `gen:<name>` resolves against the
    /// Table II registry, `inline:` carries the graph in the string, and
    /// anything else is a path.
    pub fn parse(input: &str, scale: f64, seed: u64) -> Result<GraphSource, String> {
        if let Some(body) = input.strip_prefix("inline:") {
            let (n, edge_text) = body
                .split_once(':')
                .ok_or("inline graph must be 'inline:<n>:<u>-<v>,...'")?;
            let n: usize = n
                .parse()
                .map_err(|_| format!("bad inline vertex count '{n}'"))?;
            let mut edges = Vec::new();
            for pair in edge_text.split(',').filter(|p| !p.is_empty()) {
                let (u, v) = pair
                    .split_once('-')
                    .ok_or_else(|| format!("bad inline edge '{pair}' (expected 'u-v')"))?;
                let u: u32 = u
                    .parse()
                    .map_err(|_| format!("bad inline endpoint '{u}'"))?;
                let v: u32 = v
                    .parse()
                    .map_err(|_| format!("bad inline endpoint '{v}'"))?;
                if (u as usize) >= n || (v as usize) >= n {
                    return Err(format!("inline edge {u}-{v} out of range for n={n}"));
                }
                edges.push((u, v));
            }
            return Ok(GraphSource::Inline { n, edges });
        }
        if let Some(name) = input.strip_prefix("gen:") {
            let id = GraphId::ALL
                .into_iter()
                .find(|&id| spec(id).name == name)
                .ok_or_else(|| {
                    let names: Vec<&str> =
                        GraphId::ALL.into_iter().map(|id| spec(id).name).collect();
                    format!("unknown graph '{name}'; available: {}", names.join(", "))
                })?;
            Ok(GraphSource::Gen {
                id,
                name: name.to_string(),
                scale,
                seed,
            })
        } else {
            Ok(GraphSource::File(PathBuf::from(input)))
        }
    }

    /// The graph-cache key. Generated graphs key on `(name, scale, seed)`;
    /// files key on their path (content changes on disk between jobs of
    /// one batch are not tracked).
    pub fn key(&self) -> String {
        match self {
            GraphSource::Gen {
                name, scale, seed, ..
            } => format!("gen:{name}@{scale}#{seed}"),
            GraphSource::File(p) => format!("file:{}", p.display()),
            GraphSource::Inline { n, edges } => {
                // Content-hash the edge list so distinct inline graphs get
                // distinct keys without embedding the whole list.
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                let mut mix = |x: u64| {
                    h ^= x;
                    h = h.wrapping_mul(0x0000_0100_0000_01b3);
                };
                mix(*n as u64);
                for &(u, v) in edges {
                    mix(((u as u64) << 32) | v as u64);
                }
                format!("inline:{n}:{}#{h:016x}", edges.len())
            }
        }
    }

    /// Load (generate, read, or materialize) the graph.
    pub fn load(&self) -> Result<Graph, String> {
        match self {
            GraphSource::Gen {
                id, scale, seed, ..
            } => Ok(generate(*id, Scale::Factor(*scale), *seed)),
            GraphSource::File(p) => {
                sb_graph::io::read_path(p).map_err(|e| format!("cannot read {}: {e}", p.display()))
            }
            GraphSource::Inline { n, edges } => Ok(sb_graph::builder::from_edge_list(*n, edges)),
        }
    }
}

/// Which decomposition a solver runs over — the cacheable part of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecompSpec {
    /// Baseline solvers: nothing to decompose or cache.
    None,
    /// BRIDGE (2-edge-connected components).
    Bridge,
    /// RAND with the given partition count (seed-dependent).
    Rand {
        /// Partition count.
        partitions: usize,
    },
    /// DEGk with the given degree threshold.
    Degk {
        /// Degree threshold.
        k: usize,
    },
    /// BICC (block decomposition).
    Bicc,
}

impl DecompSpec {
    /// Whether the decomposition depends on the solver seed (only RAND's
    /// partition assignment does). Seed-independent specs normalize the
    /// seed component of their cache key to 0 so all seeds share.
    pub fn uses_seed(self) -> bool {
        matches!(self, DecompSpec::Rand { .. })
    }

    /// Short label (`bridge`, `rand:10`, …) for keys and reports.
    pub fn label(self) -> String {
        match self {
            DecompSpec::None => "-".into(),
            DecompSpec::Bridge => "bridge".into(),
            DecompSpec::Rand { partitions } => format!("rand:{partitions}"),
            DecompSpec::Degk { k } => format!("degk:{k}"),
            DecompSpec::Bicc => "bicc".into(),
        }
    }
}

/// One problem × algorithm choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Solver {
    /// Maximal matching.
    Mm(MmAlgorithm),
    /// Vertex coloring.
    Color(ColorAlgorithm),
    /// Maximal independent set.
    Mis(MisAlgorithm),
}

impl Solver {
    /// The decomposition this solver consumes.
    pub fn decomp_spec(self) -> DecompSpec {
        match self {
            Solver::Mm(MmAlgorithm::Baseline)
            | Solver::Color(ColorAlgorithm::Baseline)
            | Solver::Mis(MisAlgorithm::Baseline) => DecompSpec::None,
            Solver::Mm(MmAlgorithm::Bridge)
            | Solver::Color(ColorAlgorithm::Bridge)
            | Solver::Mis(MisAlgorithm::Bridge) => DecompSpec::Bridge,
            Solver::Mm(MmAlgorithm::Rand { partitions })
            | Solver::Color(ColorAlgorithm::Rand { partitions })
            | Solver::Mis(MisAlgorithm::Rand { partitions }) => DecompSpec::Rand { partitions },
            Solver::Mm(MmAlgorithm::Degk { k })
            | Solver::Color(ColorAlgorithm::Degk { k })
            | Solver::Mis(MisAlgorithm::Degk { k }) => DecompSpec::Degk { k },
            Solver::Mm(MmAlgorithm::Bicc)
            | Solver::Color(ColorAlgorithm::Bicc)
            | Solver::Mis(MisAlgorithm::Bicc) => DecompSpec::Bicc,
        }
    }

    /// Label like `mm-rand:10`.
    pub fn label(self) -> String {
        let (problem, spec) = match self {
            Solver::Mm(_) => ("mm", self.decomp_spec()),
            Solver::Color(_) => ("color", self.decomp_spec()),
            Solver::Mis(_) => ("mis", self.decomp_spec()),
        };
        match spec {
            DecompSpec::None => format!("{problem}-baseline"),
            s => format!("{problem}-{}", s.label()),
        }
    }
}

/// A memoized decomposition, shared by reference between cache and jobs.
#[derive(Debug)]
pub enum CachedDecomposition {
    /// BRIDGE result.
    Bridge(BridgeDecomposition),
    /// RAND result.
    Rand(RandDecomposition),
    /// DEGk result.
    Degk(DegkDecomposition),
    /// BICC result.
    Bicc(BiccDecomposition),
}

impl CachedDecomposition {
    /// Estimated resident size for the cache bytes gauge. The per-edge
    /// class vector dominates every variant; auxiliary component tables
    /// are the same order and not worth itemizing.
    pub fn approx_bytes(&self) -> u64 {
        match self {
            CachedDecomposition::Bridge(d) => (d.class.len() + 4 * d.bridges.len()) as u64,
            CachedDecomposition::Rand(d) => d.class.len() as u64,
            CachedDecomposition::Degk(d) => d.class.len() as u64,
            CachedDecomposition::Bicc(d) => d.is_articulation.len() as u64,
        }
    }
}

/// Resident size of a parsed graph for cache weighting. Heap graphs
/// charge their full CSR arrays; graphs mapped from a `.sbg` charge only
/// the struct header and resident metadata — their array bytes are page
/// cache against the file, reclaimable by the kernel, so weighting them
/// into tenant quotas would double-count memory nobody holds. (This is
/// exactly [`Graph::resident_bytes`]; the wrapper keeps the engine's
/// historical name and u64 domain.)
pub(crate) fn graph_approx_bytes(g: &Graph) -> u64 {
    g.resident_bytes() as u64
}

/// Decomposition-cache key: graph content, decomposition, params, seed.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DecompKey {
    /// Seeded content fingerprint of the graph.
    pub fingerprint: u64,
    /// Decomposition and its parameters.
    pub spec: DecompSpec,
    /// Solver seed for seed-dependent specs, 0 otherwise.
    pub seed: u64,
}

impl DecompKey {
    /// The key for `spec` on the graph with `fingerprint` at `seed`.
    pub fn new(fingerprint: u64, spec: DecompSpec, seed: u64) -> DecompKey {
        DecompKey {
            fingerprint,
            spec,
            seed: if spec.uses_seed() { seed } else { 0 },
        }
    }
}

/// A solver output in family-agnostic form, rendered and compared
/// byte-for-byte across cached and fresh paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Solution {
    /// `mate[v]` per vertex (matching).
    Mate(Vec<u32>),
    /// Color per vertex.
    Color(Vec<u32>),
    /// In-set flag per vertex (MIS).
    Set(Vec<bool>),
}

impl Solution {
    /// Canonical text rendering — the same format `sbreak solve -o` writes,
    /// so batch outputs diff cleanly against single-shot runs.
    pub fn render(&self) -> String {
        match self {
            Solution::Mate(mate) => mate
                .iter()
                .enumerate()
                .filter(|&(v, &m)| (m as usize) > v && m != INVALID)
                .map(|(v, &m)| format!("{v} {m}\n"))
                .collect(),
            Solution::Color(color) => color
                .iter()
                .enumerate()
                .map(|(v, c)| format!("{v} {c}\n"))
                .collect(),
            Solution::Set(in_set) => in_set
                .iter()
                .enumerate()
                .filter(|&(_, &b)| b)
                .map(|(v, _)| format!("{v}\n"))
                .collect(),
        }
    }

    /// Check the solution against the sequential oracles.
    pub fn verify(&self, g: &Graph) -> Result<(), String> {
        match self {
            Solution::Mate(mate) => {
                verify::check_maximal_matching(g, mate).map_err(|e| e.to_string())
            }
            Solution::Color(color) => verify::check_coloring(g, color).map_err(|e| e.to_string()),
            Solution::Set(in_set) => {
                verify::check_maximal_independent_set(g, in_set).map_err(|e| e.to_string())
            }
        }
    }

    /// One-phrase result summary for reports.
    pub fn summary(&self) -> String {
        match self {
            Solution::Mate(mate) => format!(
                "matching of {} edges",
                sb_core::verify::matching_cardinality(mate)
            ),
            Solution::Color(color) => {
                let colors = color
                    .iter()
                    .filter(|&&c| c != INVALID)
                    .max()
                    .map_or(0, |&c| c as usize + 1);
                format!("{colors} colors")
            }
            Solution::Set(in_set) => {
                format!("MIS of {} vertices", in_set.iter().filter(|&&b| b).count())
            }
        }
    }
}

/// Engine construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Bound on each LRU cache (graphs and decompositions); 0 disables
    /// caching entirely.
    pub cache_cap: usize,
    /// Seed for the graph fingerprint hash.
    pub fingerprint_seed: u64,
    /// Per-tenant resident-byte quota applied to each cache (`None` =
    /// unlimited, the single-tenant default). See [`crate::cache::Lru`]
    /// for the burst-then-protect eviction semantics.
    pub tenant_quota_bytes: Option<u64>,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            cache_cap: 64,
            fingerprint_seed: fingerprint::DEFAULT_SEED,
            tenant_quota_bytes: None,
        }
    }
}

/// Outcome of one cached solve (see [`Engine::solve_on`]).
#[derive(Debug)]
pub struct SolveOutcome {
    /// The verified-comparable output.
    pub solution: Solution,
    /// Solver stats; `decompose_time` is the *measured* decomposition time
    /// on a cache miss and zero on a hit.
    pub stats: RunStats,
    /// `Some(true)` when the decomposition came from the cache,
    /// `Some(false)` when it was computed here, `None` for baselines.
    pub decomp_cached: Option<bool>,
}

/// The multi-tenant batch-solve engine: two bounded LRUs (parsed graphs by
/// source key; decompositions by `(fingerprint, spec, params, seed)`) and
/// the scheduling machinery in [`crate::batch`].
pub struct Engine {
    pub(crate) fingerprint_seed: u64,
    pub(crate) graphs: Lru<String, (Arc<Graph>, u64)>,
    pub(crate) decomps: Lru<DecompKey, Arc<CachedDecomposition>>,
}

impl Engine {
    /// An engine with the given configuration.
    pub fn new(cfg: EngineConfig) -> Engine {
        let mut graphs = Lru::with_metrics(cfg.cache_cap, "graph");
        let mut decomps = Lru::with_metrics(cfg.cache_cap, "decomp");
        graphs.set_tenant_quota(cfg.tenant_quota_bytes);
        decomps.set_tenant_quota(cfg.tenant_quota_bytes);
        Engine {
            fingerprint_seed: cfg.fingerprint_seed,
            graphs,
            decomps,
        }
    }

    /// An engine with the given cache bound and default fingerprint seed.
    pub fn with_cap(cache_cap: usize) -> Engine {
        Engine::new(EngineConfig {
            cache_cap,
            ..EngineConfig::default()
        })
    }

    /// Graph-cache statistics.
    pub fn graph_cache_stats(&self) -> CacheStats {
        self.graphs.stats()
    }

    /// Decomposition-cache statistics.
    pub fn decomp_cache_stats(&self) -> CacheStats {
        self.decomps.stats()
    }

    /// Fetch (or load and memoize) the graph for `src`. Returns the shared
    /// graph, its fingerprint, and whether it came from the cache.
    pub fn graph(&mut self, src: &GraphSource) -> Result<(Arc<Graph>, u64, bool), String> {
        let key = src.key();
        if let Some((g, fp)) = self.graphs.get(&key) {
            return Ok((g.clone(), *fp, true));
        }
        let g = Arc::new(src.load()?);
        let fp = fingerprint_graph(&g, self.fingerprint_seed);
        let bytes = graph_approx_bytes(&g);
        self.graphs.insert_weighted(key, (g.clone(), fp), bytes);
        Ok((g, fp, false))
    }

    /// Solve `solver` on an already-loaded graph through the decomposition
    /// cache. This is the synchronous library path (no watchdog, current
    /// thread pool); [`Engine::run_job`] wraps the same computation with
    /// source resolution, thread pinning, and a timeout.
    pub fn solve_on(
        &mut self,
        g: &Arc<Graph>,
        solver: Solver,
        arch: Arch,
        seed: u64,
        opts: &SolveOpts,
    ) -> SolveOutcome {
        let fp = fingerprint_graph(g, self.fingerprint_seed);
        self.solve_on_fingerprinted(g, fp, solver, arch, seed, opts)
    }

    /// [`Engine::solve_on`] with the graph's cache fingerprint supplied by
    /// the caller instead of recomputed. This is how edited graphs keep
    /// their `(base, edit log)` identity: [`Engine::apply_edits`] keys its
    /// patched decompositions under [`fingerprint_with_edits`], and solves
    /// against the materialized graph must probe under that same key (the
    /// heap content hash of the materialized CSR would both miss the
    /// patched entries and cost O(m) on every call).
    pub fn solve_on_fingerprinted(
        &mut self,
        g: &Arc<Graph>,
        fp: u64,
        solver: Solver,
        arch: Arch,
        seed: u64,
        opts: &SolveOpts,
    ) -> SolveOutcome {
        let spec = solver.decomp_spec();
        if spec == DecompSpec::None {
            let (solution, stats) = run_solver(g, solver, None, arch, seed, opts);
            return SolveOutcome {
                solution,
                stats,
                decomp_cached: None,
            };
        }
        let key = DecompKey::new(fp, spec, seed);
        let (d, cached, decompose_time) = match self.decomps.get(&key) {
            Some(d) => (d.clone(), true, Duration::ZERO),
            None => {
                let (d, dt) = compute_decomposition(g, spec, seed, opts.trace.clone());
                let d = Arc::new(d);
                let bytes = d.approx_bytes();
                self.decomps.insert_weighted(key, d.clone(), bytes);
                (d, false, dt)
            }
        };
        let (solution, mut stats) = run_solver(g, solver, Some(&d), arch, seed, opts);
        stats.decompose_time = decompose_time;
        SolveOutcome {
            solution,
            stats,
            decomp_cached: Some(cached),
        }
    }

    /// Apply an edit log against a loaded base graph: materialize the
    /// edited CSR (memoized under its `(base, edit log)` fingerprint) and
    /// *patch* every cached decomposition of the base across to the new
    /// fingerprint instead of letting it go cold — the warm entries follow
    /// the graph. DEGk patches by re-testing only edit-touched vertex
    /// degrees; RAND extends its pure per-vertex hash draw; BRIDGE and
    /// BICC recompute (2-edge-connectivity and block structure are global
    /// invariants a local edit can reshape). Patched entries are
    /// byte-identical to freshly computed ones — the fuzz engine axis and
    /// the unit tests below pin this.
    ///
    /// Cache inserts are charged to `tenant` (use
    /// [`crate::cache::DEFAULT_TENANT`]-equivalent semantics by passing
    /// `"default"`-style names; serve passes the session tenant).
    pub fn apply_edits(&mut self, tenant: &str, base: &Arc<Graph>, edits: &EditLog) -> EditOutcome {
        let base_fp = fingerprint_graph(base, self.fingerprint_seed);
        self.apply_edits_from(tenant, base, base_fp, edits)
    }

    /// [`Engine::apply_edits`] when the base's fingerprint is already
    /// known. The base never gets re-hashed: `base_fp` both seeds the
    /// edit fingerprint and selects which cached decompositions to patch.
    /// This is what keeps a long-lived serve mutation stream O(batch)
    /// after a rebase — the stream's base is then a materialized heap
    /// graph whose content hash would be O(m) per mutate, but the stream
    /// carries the fingerprint it got from the rebase instead.
    ///
    /// `base_fp` must be the fingerprint this engine would assign `base`
    /// (from [`Engine::graph`], a prior [`EditOutcome::fingerprint`], or
    /// [`fingerprint_graph`] under the engine's seed); a mismatched pair
    /// can only miss warm entries and create duplicate keys, never alias
    /// a wrong graph.
    pub fn apply_edits_from(
        &mut self,
        tenant: &str,
        base: &Arc<Graph>,
        base_fp: u64,
        edits: &EditLog,
    ) -> EditOutcome {
        let fp = fingerprint_with_edits_from(base_fp, edits, self.fingerprint_seed);
        if edits.is_empty() {
            // No edits: the base *is* the edited graph, and its cached
            // decompositions are already keyed under `fp` (the edit
            // fingerprint degenerates to the base's). Patching here would
            // re-insert every entry onto its own key — re-charging other
            // tenants' bytes to this one for no structural change.
            return EditOutcome {
                graph: base.clone(),
                fingerprint: fp,
                graph_cached: true,
                decomps_patched: 0,
            };
        }
        let key = format!("edit:{fp:016x}");
        if let Some((g, cached_fp)) = self.graphs.get(&key) {
            return EditOutcome {
                graph: g.clone(),
                fingerprint: *cached_fp,
                graph_cached: true,
                decomps_patched: 0,
            };
        }
        let overlay = edits.apply(base);
        let edited = Arc::new(overlay.materialize());
        let mut decomps_patched = 0;
        for old_key in self.decomps.keys() {
            if old_key.fingerprint != base_fp {
                continue;
            }
            let new_key = DecompKey::new(fp, old_key.spec, old_key.seed);
            let Some(old) = self.decomps.get(&old_key).cloned() else {
                continue;
            };
            let patched = patch_decomposition(&old, &overlay, &edited, old_key.spec, old_key.seed);
            let bytes = patched.approx_bytes();
            self.decomps
                .insert_weighted_for(tenant, new_key, Arc::new(patched), bytes);
            decomps_patched += 1;
        }
        let bytes = graph_approx_bytes(&edited);
        self.graphs
            .insert_weighted_for(tenant, key, (edited.clone(), fp), bytes);
        EditOutcome {
            graph: edited,
            fingerprint: fp,
            graph_cached: false,
            decomps_patched,
        }
    }

    /// Test hook: corrupt every cached decomposition in place (rotate
    /// every edge's class / flip every articulation flag), simulating a
    /// stale entry left behind for a different graph. Returns how many
    /// entries were corrupted. Used by the fuzz layer's planted
    /// stale-cache self-test — a correct engine never mutates a cached
    /// view, so the byte-equality oracle must catch this.
    #[doc(hidden)]
    pub fn corrupt_cached_decompositions(&mut self) -> usize {
        let mut corrupted = 0;
        for key in self.decomps.keys() {
            let Some(entry) = self.decomps.get_mut(&key) else {
                continue;
            };
            let Some(d) = Arc::get_mut(entry) else {
                continue;
            };
            match d {
                CachedDecomposition::Bridge(b) => {
                    for c in &mut b.class {
                        *c ^= 1;
                    }
                }
                CachedDecomposition::Rand(r) => {
                    for c in &mut r.class {
                        *c ^= 1;
                    }
                }
                CachedDecomposition::Degk(d) => {
                    for c in &mut d.class {
                        *c = (*c + 1) % 3;
                    }
                }
                CachedDecomposition::Bicc(b) => {
                    for a in &mut b.is_articulation {
                        *a = !*a;
                    }
                }
            }
            corrupted += 1;
        }
        corrupted
    }
}

/// Outcome of [`Engine::apply_edits`].
#[derive(Debug)]
pub struct EditOutcome {
    /// The materialized edited graph (shared from the cache when warm).
    pub graph: Arc<Graph>,
    /// The `(base, edit log)` fingerprint — the cache identity of the
    /// edited graph; pass it to [`Engine::solve_on_fingerprinted`].
    pub fingerprint: u64,
    /// Whether the edited graph was already resident.
    pub graph_cached: bool,
    /// How many cached decompositions of the base were patched across.
    pub decomps_patched: usize,
}

/// Carry one cached decomposition of the base graph across an edit,
/// producing the decomposition of `edited` byte-identical to computing it
/// fresh. DEGk re-tests degrees only for edit-touched vertices (untouched
/// degrees cannot change); RAND's per-vertex draw is the pure hash of
/// `(seed, v)`, so existing draws are reused verbatim and new vertices
/// drawn on demand. Per-edge class vectors are re-derived over the edited
/// edge list in either case — edge ids shift on rebuild, so the class
/// array cannot be spliced, but deriving a class from two vertex flags is
/// O(1) per edge with no graph traversal. BRIDGE and BICC recompute.
fn patch_decomposition(
    old: &CachedDecomposition,
    overlay: &Overlay<'_>,
    edited: &Graph,
    spec: DecompSpec,
    seed: u64,
) -> CachedDecomposition {
    let n = edited.num_vertices();
    match old {
        CachedDecomposition::Degk(old) => {
            let k = old.k;
            let mut is_high = old.is_high.clone();
            is_high.resize(n, false);
            for v in overlay.touched() {
                is_high[v as usize] = edited.degree(v) > k;
            }
            let class: Vec<u8> = edited
                .edge_list()
                .iter()
                .map(|&[u, v]| match (is_high[u as usize], is_high[v as usize]) {
                    (true, true) => DegkDecomposition::HIGH,
                    (false, false) => DegkDecomposition::LOW,
                    _ => DegkDecomposition::CROSS,
                })
                .collect();
            let mut counts = [0usize; 3];
            for &c in &class {
                counts[c as usize] += 1;
            }
            CachedDecomposition::Degk(DegkDecomposition {
                k,
                is_high,
                class,
                m_high: counts[0],
                m_low: counts[1],
                m_cross: counts[2],
            })
        }
        CachedDecomposition::Rand(old) => {
            let k = old.k;
            let base_n = old.part.len();
            let mut part = old.part.clone();
            part.resize(n, 0);
            for v in base_n..n {
                part[v] = bounded(hash2(seed, v as u64), k as u64) as u32;
            }
            let class: Vec<u8> = edited
                .edge_list()
                .iter()
                .map(|&[u, v]| u8::from(part[u as usize] != part[v as usize]))
                .collect();
            let m_cross = class
                .iter()
                .filter(|&&c| c == RandDecomposition::CROSS)
                .count();
            CachedDecomposition::Rand(RandDecomposition {
                k,
                part,
                m_induced: edited.num_edges() - m_cross,
                m_cross,
                class,
            })
        }
        CachedDecomposition::Bridge(_) | CachedDecomposition::Bicc(_) => {
            compute_decomposition(edited, spec, seed, None).0
        }
    }
}

/// Compute the decomposition for `spec`, timing it and charging its work
/// (and a `decompose` phase span) to the job's trace sink when given.
pub(crate) fn compute_decomposition(
    g: &Graph,
    spec: DecompSpec,
    seed: u64,
    trace: Option<Arc<TraceSink>>,
) -> (CachedDecomposition, Duration) {
    let counters = match trace {
        Some(sink) => Counters::with_trace(sink),
        None => Counters::new(),
    };
    let sw = Stopwatch::start();
    let d = {
        let _span = counters.phase("decompose");
        match spec {
            DecompSpec::None => unreachable!("baselines have no decomposition"),
            DecompSpec::Bridge => CachedDecomposition::Bridge(decompose_bridge(g, &counters)),
            DecompSpec::Rand { partitions } => {
                CachedDecomposition::Rand(decompose_rand(g, partitions, seed, &counters))
            }
            DecompSpec::Degk { k } => CachedDecomposition::Degk(decompose_degk(g, k, &counters)),
            DecompSpec::Bicc => CachedDecomposition::Bicc(decompose_bicc(g, &counters)),
        }
    };
    (d, sw.elapsed())
}

/// Dispatch `solver` against a precomputed decomposition (or none for
/// baselines). The `*_with` entry points guarantee the output is
/// byte-identical to the decompose-inline `*_opts` path.
pub(crate) fn run_solver(
    g: &Graph,
    solver: Solver,
    d: Option<&CachedDecomposition>,
    arch: Arch,
    seed: u64,
    opts: &SolveOpts,
) -> (Solution, RunStats) {
    use CachedDecomposition as D;
    match (solver, d) {
        (Solver::Mm(MmAlgorithm::Baseline), None) => {
            let run = mm_decomp::baseline_run_opts(g, arch, seed, opts);
            (Solution::Mate(run.mate), run.stats)
        }
        (Solver::Mm(MmAlgorithm::Bridge), Some(D::Bridge(d))) => {
            let run = mm_decomp::mm_bridge_with(g, d, arch, seed, opts);
            (Solution::Mate(run.mate), run.stats)
        }
        (Solver::Mm(MmAlgorithm::Rand { .. }), Some(D::Rand(d))) => {
            let run = mm_decomp::mm_rand_with(g, d, arch, seed, opts);
            (Solution::Mate(run.mate), run.stats)
        }
        (Solver::Mm(MmAlgorithm::Degk { .. }), Some(D::Degk(d))) => {
            let run = mm_decomp::mm_degk_with(g, d, arch, seed, opts);
            (Solution::Mate(run.mate), run.stats)
        }
        (Solver::Mm(MmAlgorithm::Bicc), Some(D::Bicc(d))) => {
            let run = mm_decomp::mm_bicc_with(g, d, arch, seed, opts);
            (Solution::Mate(run.mate), run.stats)
        }
        (Solver::Color(ColorAlgorithm::Baseline), None) => {
            let run = color_decomp::baseline_run_opts(g, arch, seed, opts);
            (Solution::Color(run.color), run.stats)
        }
        (Solver::Color(ColorAlgorithm::Bridge), Some(D::Bridge(d))) => {
            let run = color_decomp::color_bridge_with(g, d, arch, seed, opts);
            (Solution::Color(run.color), run.stats)
        }
        (Solver::Color(ColorAlgorithm::Rand { .. }), Some(D::Rand(d))) => {
            let run = color_decomp::color_rand_with(g, d, arch, seed, opts);
            (Solution::Color(run.color), run.stats)
        }
        (Solver::Color(ColorAlgorithm::Degk { .. }), Some(D::Degk(d))) => {
            let run = color_decomp::color_degk_with(g, d, arch, seed, opts);
            (Solution::Color(run.color), run.stats)
        }
        (Solver::Color(ColorAlgorithm::Bicc), Some(D::Bicc(d))) => {
            let run = color_decomp::color_bicc_with(g, d, arch, seed, opts);
            (Solution::Color(run.color), run.stats)
        }
        (Solver::Mis(MisAlgorithm::Baseline), None) => {
            let run = mis_decomp::baseline_run_opts(g, arch, seed, opts);
            (Solution::Set(run.in_set), run.stats)
        }
        (Solver::Mis(MisAlgorithm::Bridge), Some(D::Bridge(d))) => {
            let run = mis_decomp::mis_bridge_with(g, d, arch, seed, opts);
            (Solution::Set(run.in_set), run.stats)
        }
        (Solver::Mis(MisAlgorithm::Rand { .. }), Some(D::Rand(d))) => {
            let run = mis_decomp::mis_rand_with(g, d, arch, seed, opts);
            (Solution::Set(run.in_set), run.stats)
        }
        (Solver::Mis(MisAlgorithm::Degk { .. }), Some(D::Degk(d))) => {
            let run = mis_decomp::mis_degk_with(g, d, arch, seed, opts);
            (Solution::Set(run.in_set), run.stats)
        }
        (Solver::Mis(MisAlgorithm::Bicc), Some(D::Bicc(d))) => {
            let run = mis_decomp::mis_bicc_with(g, d, arch, seed, opts);
            (Solution::Set(run.in_set), run.stats)
        }
        (solver, _) => unreachable!("solver {solver:?} paired with wrong decomposition"),
    }
}

/// Parse an `sbreak`-style `--frontier` value.
pub fn parse_frontier(s: &str) -> Result<FrontierMode, String> {
    s.parse()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_core::matching::maximal_matching_opts;
    use sb_core::mis::maximal_independent_set_opts;
    use sb_graph::builder::from_edge_list;

    fn chain_graph(n: u32) -> Arc<Graph> {
        let edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        Arc::new(from_edge_list(n as usize, &edges))
    }

    fn all_solvers() -> Vec<Solver> {
        let mut v = Vec::new();
        for p in 0..3 {
            for a in 0..5 {
                v.push(match (p, a) {
                    (0, 0) => Solver::Mm(MmAlgorithm::Baseline),
                    (0, 1) => Solver::Mm(MmAlgorithm::Bridge),
                    (0, 2) => Solver::Mm(MmAlgorithm::Rand { partitions: 3 }),
                    (0, 3) => Solver::Mm(MmAlgorithm::Degk { k: 2 }),
                    (0, 4) => Solver::Mm(MmAlgorithm::Bicc),
                    (1, 0) => Solver::Color(ColorAlgorithm::Baseline),
                    (1, 1) => Solver::Color(ColorAlgorithm::Bridge),
                    (1, 2) => Solver::Color(ColorAlgorithm::Rand { partitions: 3 }),
                    (1, 3) => Solver::Color(ColorAlgorithm::Degk { k: 2 }),
                    (1, 4) => Solver::Color(ColorAlgorithm::Bicc),
                    (2, 0) => Solver::Mis(MisAlgorithm::Baseline),
                    (2, 1) => Solver::Mis(MisAlgorithm::Bridge),
                    (2, 2) => Solver::Mis(MisAlgorithm::Rand { partitions: 3 }),
                    (2, 3) => Solver::Mis(MisAlgorithm::Degk { k: 2 }),
                    _ => Solver::Mis(MisAlgorithm::Bicc),
                });
            }
        }
        v
    }

    #[test]
    fn cached_path_matches_direct_opts_path_bytewise() {
        // The core byte-identity contract: engine (fresh miss, then cache
        // hit) == the plain *_opts composite, for every solver family.
        let g = chain_graph(40);
        let opts = SolveOpts::default();
        for solver in all_solvers() {
            let mut engine = Engine::with_cap(8);
            let fresh = engine.solve_on(&g, solver, Arch::Cpu, 7, &opts);
            let hit = engine.solve_on(&g, solver, Arch::Cpu, 7, &opts);
            assert_eq!(
                fresh.solution,
                hit.solution,
                "cache hit diverged for {}",
                solver.label()
            );
            if solver.decomp_spec() != DecompSpec::None {
                assert_eq!(fresh.decomp_cached, Some(false));
                assert_eq!(hit.decomp_cached, Some(true));
            }
            let direct: Solution = match solver {
                Solver::Mm(a) => {
                    Solution::Mate(maximal_matching_opts(&g, a, Arch::Cpu, 7, &opts).mate)
                }
                Solver::Color(a) => Solution::Color(
                    sb_core::coloring::vertex_coloring_opts(&g, a, Arch::Cpu, 7, &opts).color,
                ),
                Solver::Mis(a) => {
                    Solution::Set(maximal_independent_set_opts(&g, a, Arch::Cpu, 7, &opts).in_set)
                }
            };
            assert_eq!(
                fresh.solution,
                direct,
                "engine output differs from composite for {}",
                solver.label()
            );
            fresh.solution.verify(&g).unwrap();
        }
    }

    #[test]
    fn decompositions_shared_across_problem_families() {
        // COLOR-Degk2 and MIS-Degk2 on the same graph share one DEGk
        // decomposition; the second solve must be a cache hit.
        let g = chain_graph(64);
        let mut engine = Engine::with_cap(8);
        let opts = SolveOpts::default();
        let a = engine.solve_on(
            &g,
            Solver::Color(ColorAlgorithm::Degk { k: 2 }),
            Arch::Cpu,
            5,
            &opts,
        );
        let b = engine.solve_on(
            &g,
            Solver::Mis(MisAlgorithm::Degk { k: 2 }),
            Arch::Cpu,
            5,
            &opts,
        );
        assert_eq!(a.decomp_cached, Some(false));
        assert_eq!(b.decomp_cached, Some(true), "DEGk must be shared");
        b.solution.verify(&g).unwrap();
    }

    #[test]
    fn rand_cache_key_includes_seed() {
        let g = chain_graph(64);
        let mut engine = Engine::with_cap(8);
        let opts = SolveOpts::default();
        let solver = Solver::Mm(MmAlgorithm::Rand { partitions: 4 });
        assert_eq!(
            engine
                .solve_on(&g, solver, Arch::Cpu, 1, &opts)
                .decomp_cached,
            Some(false)
        );
        assert_eq!(
            engine
                .solve_on(&g, solver, Arch::Cpu, 2, &opts)
                .decomp_cached,
            Some(false),
            "different seed must not hit RAND's cache entry"
        );
        // Seed-independent DEGk: different seeds share.
        let dk = Solver::Mm(MmAlgorithm::Degk { k: 2 });
        assert_eq!(
            engine.solve_on(&g, dk, Arch::Cpu, 1, &opts).decomp_cached,
            Some(false)
        );
        assert_eq!(
            engine.solve_on(&g, dk, Arch::Cpu, 2, &opts).decomp_cached,
            Some(true)
        );
    }

    #[test]
    fn cap_zero_never_caches() {
        let g = chain_graph(32);
        let mut engine = Engine::with_cap(0);
        let opts = SolveOpts::default();
        let solver = Solver::Mis(MisAlgorithm::Degk { k: 2 });
        let a = engine.solve_on(&g, solver, Arch::Cpu, 3, &opts);
        let b = engine.solve_on(&g, solver, Arch::Cpu, 3, &opts);
        assert_eq!(a.decomp_cached, Some(false));
        assert_eq!(b.decomp_cached, Some(false));
        assert_eq!(a.solution, b.solution, "fresh runs are deterministic");
    }

    #[test]
    fn corrupt_hook_changes_cached_output() {
        // The stale-cache planted bug: after corrupting the cached view,
        // the cached run must diverge from a fresh engine's run.
        let n: u32 = 32;
        let mut edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        edges.extend((0..n).map(|i| (i, (i * 7 + 3) % n)));
        let g = Arc::new(from_edge_list(n as usize, &edges));
        let opts = SolveOpts::default();
        let solver = Solver::Color(ColorAlgorithm::Rand { partitions: 3 });
        let mut engine = Engine::with_cap(8);
        let clean = engine.solve_on(&g, solver, Arch::Cpu, 9, &opts);
        assert!(engine.corrupt_cached_decompositions() > 0);
        let stale = engine.solve_on(&g, solver, Arch::Cpu, 9, &opts);
        assert_eq!(stale.decomp_cached, Some(true));
        assert_ne!(
            clean.solution, stale.solution,
            "swapping every edge's induced/cross class must change the output"
        );
    }

    #[test]
    fn graph_cache_by_source_key() {
        let mut engine = Engine::with_cap(4);
        let src = GraphSource::parse("gen:lp1", 0.05, 42).unwrap();
        let (a, fp_a, hit_a) = engine.graph(&src).unwrap();
        let (b, fp_b, hit_b) = engine.graph(&src).unwrap();
        assert!(!hit_a);
        assert!(hit_b);
        assert_eq!(fp_a, fp_b);
        assert!(Arc::ptr_eq(&a, &b));
        // Different generation seed = different key and fingerprint.
        let other = GraphSource::parse("gen:lp1", 0.05, 43).unwrap();
        let (_, fp_c, hit_c) = engine.graph(&other).unwrap();
        assert!(!hit_c);
        assert_ne!(fp_a, fp_c);
        assert!(GraphSource::parse("gen:nope", 1.0, 1).is_err());
    }

    #[test]
    fn inline_source_roundtrips_and_keeps_isolated_vertices() {
        let edges = vec![(0u32, 1u32), (1, 2)];
        let text = GraphSource::encode_inline(5, &edges);
        assert_eq!(text, "inline:5:0-1,1-2");
        let src = GraphSource::parse(&text, 1.0, 0).unwrap();
        assert_eq!(src, GraphSource::Inline { n: 5, edges });
        let g = src.load().unwrap();
        assert_eq!(g.num_vertices(), 5, "trailing isolated vertices survive");
        assert_eq!(g.num_edges(), 2);
        // Distinct graphs get distinct cache keys; same graph, same key.
        let same = GraphSource::parse("inline:5:0-1,1-2", 0.3, 9).unwrap();
        assert_eq!(src.key(), same.key());
        let other = GraphSource::parse("inline:5:0-1,1-3", 1.0, 0).unwrap();
        assert_ne!(src.key(), other.key());
        // Empty edge lists are legal; malformed ones are not.
        assert!(GraphSource::parse("inline:3:", 1.0, 0).is_ok());
        assert!(GraphSource::parse("inline:3", 1.0, 0).is_err());
        assert!(GraphSource::parse("inline:3:0-9", 1.0, 0).is_err());
        assert!(GraphSource::parse("inline:3:0+1", 1.0, 0).is_err());
    }

    fn edit_script() -> EditLog {
        let mut log = EditLog::new();
        log.add_edge(0, 20).remove_edge(5, 6).add_edge(40, 41);
        log
    }

    #[test]
    fn apply_edits_patches_decompositions_byte_identically() {
        // Prime the cache with every decomposition family, apply edits,
        // then check each patched solve equals a fresh engine's solve on
        // the materialized edited graph — byte for byte.
        let g = chain_graph(40);
        let opts = SolveOpts::default();
        let solvers = [
            Solver::Mm(MmAlgorithm::Degk { k: 2 }),
            Solver::Mm(MmAlgorithm::Rand { partitions: 3 }),
            Solver::Mis(MisAlgorithm::Bridge),
            Solver::Color(ColorAlgorithm::Bicc),
        ];
        let mut engine = Engine::with_cap(16);
        for &s in &solvers {
            engine.solve_on(&g, s, Arch::Cpu, 7, &opts);
        }
        let log = edit_script();
        let out = engine.apply_edits("default", &g, &log);
        assert!(!out.graph_cached);
        assert_eq!(out.decomps_patched, 4, "all four primed entries follow");
        assert_eq!(out.graph.num_vertices(), 42);
        for &s in &solvers {
            let patched =
                engine.solve_on_fingerprinted(&out.graph, out.fingerprint, s, Arch::Cpu, 7, &opts);
            assert_eq!(
                patched.decomp_cached,
                Some(true),
                "patched entry missed for {}",
                s.label()
            );
            let fresh = Engine::with_cap(0).solve_on(&out.graph, s, Arch::Cpu, 7, &opts);
            assert_eq!(
                patched.solution,
                fresh.solution,
                "patched decomposition diverged for {}",
                s.label()
            );
            patched.solution.verify(&out.graph).unwrap();
        }
        // Re-applying the same log is a warm graph hit.
        let again = engine.apply_edits("default", &g, &log);
        assert!(again.graph_cached);
        assert!(Arc::ptr_eq(&again.graph, &out.graph));
    }

    #[test]
    fn apply_edits_from_chains_across_a_rebase() {
        // A rebased mutation stream adopts a materialized graph as its
        // base and keeps extending via `apply_edits_from` with the
        // fingerprint from the previous hop. Decompositions must keep
        // following the chain, and each hop's patched solve must equal a
        // fresh engine's solve on the same materialized graph.
        let g = chain_graph(40);
        let opts = SolveOpts::default();
        let solver = Solver::Mis(MisAlgorithm::Degk { k: 2 });
        let mut engine = Engine::with_cap(16);
        engine.solve_on(&g, solver, Arch::Cpu, 7, &opts);

        let hop1 = engine.apply_edits("default", &g, &edit_script());
        assert_eq!(hop1.decomps_patched, 1);
        engine.solve_on_fingerprinted(&hop1.graph, hop1.fingerprint, solver, Arch::Cpu, 7, &opts);

        // Rebase: hop1's materialization is the new base; its stored
        // fingerprint stands in for an O(m) re-hash.
        let mut log2 = EditLog::new();
        log2.remove_edge(10, 11).add_edge(0, 39);
        let hop2 = engine.apply_edits_from("default", &hop1.graph, hop1.fingerprint, &log2);
        assert!(!hop2.graph_cached);
        assert_eq!(hop2.decomps_patched, 1, "hop1's entry follows the rebase");
        let patched =
            engine.solve_on_fingerprinted(&hop2.graph, hop2.fingerprint, solver, Arch::Cpu, 7, &opts);
        assert_eq!(patched.decomp_cached, Some(true));
        let fresh = Engine::with_cap(0).solve_on(&hop2.graph, solver, Arch::Cpu, 7, &opts);
        assert_eq!(patched.solution, fresh.solution);
        patched.solution.verify(&hop2.graph).unwrap();

        // An empty log under a precomputed fingerprint is the base
        // itself, with the same identity.
        let noop = engine.apply_edits_from("default", &hop2.graph, hop2.fingerprint, &EditLog::new());
        assert!(noop.graph_cached);
        assert_eq!(noop.fingerprint, hop2.fingerprint);
        assert!(Arc::ptr_eq(&noop.graph, &hop2.graph));
    }

    #[test]
    fn apply_edits_empty_log_shares_base_fingerprint() {
        let g = chain_graph(12);
        let mut engine = Engine::with_cap(8);
        let primed = engine.solve_on(
            &g,
            Solver::Mis(MisAlgorithm::Degk { k: 2 }),
            Arch::Cpu,
            3,
            &SolveOpts::default(),
        );
        assert_eq!(primed.decomp_cached, Some(false));
        let out = engine.apply_edits("default", &g, &EditLog::new());
        assert_eq!(
            out.fingerprint,
            fingerprint_graph(&g, fingerprint::DEFAULT_SEED),
            "no edits = the base's own identity"
        );
        let hit = engine.solve_on_fingerprinted(
            &out.graph,
            out.fingerprint,
            Solver::Mis(MisAlgorithm::Degk { k: 2 }),
            Arch::Cpu,
            3,
            &SolveOpts::default(),
        );
        assert_eq!(hit.decomp_cached, Some(true));
        assert_eq!(hit.solution, primed.solution);
    }

    #[test]
    fn solver_labels() {
        assert_eq!(Solver::Mm(MmAlgorithm::Baseline).label(), "mm-baseline");
        assert_eq!(
            Solver::Color(ColorAlgorithm::Rand { partitions: 2 }).label(),
            "color-rand:2"
        );
        assert_eq!(
            Solver::Mis(MisAlgorithm::Degk { k: 2 }).label(),
            "mis-degk:2"
        );
    }
}
