//! Seeded xxhash-style graph fingerprinting.
//!
//! The engine keys its decomposition cache by the *content* of a graph,
//! not by where it came from, so the same CSR reached through two sources
//! (a generated stand-in and an edge-list file, say) shares cache entries.
//! The canonical CSR is fully determined by `(n, edge list)` — the builder
//! sorts and deduplicates adjacency deterministically — so hashing the
//! vertex count and the edge list covers the whole structure.
//!
//! The hash is the xxh64 round structure (four lanes of
//! multiply-rotate-multiply over 64-bit words, merged and avalanched at
//! the end), seeded so independent engines can decorrelate their keys.
//! It is a fingerprint, not a cryptographic digest: collisions are
//! astronomically unlikely at cache scale, and a collision costs a wrong
//! cache hit, which the fuzz layer's byte-equality oracle would surface.

use sb_graph::csr::Graph;
use sb_graph::editlog::{Edit, EditLog};

/// Default fingerprint seed (any fixed value works; this one spells the
/// project out in hex-ish).
pub const DEFAULT_SEED: u64 = 0x5bbe_a51e_2017_0529;

const P1: u64 = 0x9E37_79B1_85EB_CA87;
const P2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const P3: u64 = 0x1656_67B1_9E37_79F9;
const P4: u64 = 0x85EB_CA77_C2B2_AE63;
const P5: u64 = 0x27D4_EB2F_1656_67C5;

/// Streaming xxh64-style hasher over 64-bit words.
#[derive(Debug, Clone)]
pub struct WordHasher {
    lanes: [u64; 4],
    /// Words not yet folded into a full 4-word stripe.
    tail: [u64; 4],
    tail_len: usize,
    words: u64,
}

fn round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(P2))
        .rotate_left(31)
        .wrapping_mul(P1)
}

fn merge_lane(acc: u64, lane: u64) -> u64 {
    (acc ^ round(0, lane)).wrapping_mul(P1).wrapping_add(P4)
}

impl WordHasher {
    /// A fresh hasher with the given seed.
    pub fn new(seed: u64) -> WordHasher {
        WordHasher {
            lanes: [
                seed.wrapping_add(P1).wrapping_add(P2),
                seed.wrapping_add(P2),
                seed,
                seed.wrapping_sub(P1),
            ],
            tail: [0; 4],
            tail_len: 0,
            words: 0,
        }
    }

    /// Feed one 64-bit word.
    pub fn write(&mut self, w: u64) {
        self.tail[self.tail_len] = w;
        self.tail_len += 1;
        self.words += 1;
        if self.tail_len == 4 {
            for i in 0..4 {
                self.lanes[i] = round(self.lanes[i], self.tail[i]);
            }
            self.tail_len = 0;
        }
    }

    /// Final 64-bit digest.
    pub fn finish(&self) -> u64 {
        let mut h = if self.words >= 4 {
            let [a, b, c, d] = self.lanes;
            let mut h = a
                .rotate_left(1)
                .wrapping_add(b.rotate_left(7))
                .wrapping_add(c.rotate_left(12))
                .wrapping_add(d.rotate_left(18));
            h = merge_lane(h, a);
            h = merge_lane(h, b);
            h = merge_lane(h, c);
            merge_lane(h, d)
        } else {
            self.lanes[2].wrapping_add(P5)
        };
        h = h.wrapping_add(self.words.wrapping_mul(8));
        for &w in &self.tail[..self.tail_len] {
            h = (h ^ round(0, w))
                .rotate_left(27)
                .wrapping_mul(P1)
                .wrapping_add(P4);
        }
        h ^= h >> 33;
        h = h.wrapping_mul(P2);
        h ^= h >> 29;
        h = h.wrapping_mul(P3);
        h ^ (h >> 32)
    }
}

/// Domain-separation tag mixed into identity-based fingerprints so a
/// mapped graph can never collide with a content hash by construction.
const MAPPED_DOMAIN: u64 = 0x5b67_4d41_5050_4544; // "sbgMAPPED"-ish

/// Fingerprint a graph's structure under `seed`.
///
/// Heap graphs hash their content (`n`, `m`, edge list). Mapped graphs
/// hash the *identity* of the backing file (device, inode, size, mtime)
/// plus `(n, m)` instead: an O(1) fingerprint that does not fault the
/// whole multi-GB mapping in, at the cost that a mapped graph and a heap
/// graph with identical content get distinct cache keys. An edited or
/// replaced `.sbg` file changes identity (size/mtime/inode), so stale
/// cache hits against rewritten files are keyed away.
pub fn fingerprint_graph(g: &Graph, seed: u64) -> u64 {
    if let Some(ident) = g.mapped_ident() {
        let mut h = WordHasher::new(seed ^ MAPPED_DOMAIN);
        h.write(ident.dev);
        h.write(ident.ino);
        h.write(ident.size);
        h.write(ident.mtime_ns);
        h.write(g.num_vertices() as u64);
        h.write(g.num_edges() as u64);
        return h.finish();
    }
    let mut h = WordHasher::new(seed);
    h.write(g.num_vertices() as u64);
    h.write(g.num_edges() as u64);
    for &[u, v] in g.edge_list() {
        h.write(((u as u64) << 32) | v as u64);
    }
    h.finish()
}

/// Domain-separation tag for `(base graph, edit log)` fingerprints, so an
/// edited view can never collide with a plain content or identity hash.
const EDIT_DOMAIN: u64 = 0x5b45_4449_5453_4c47; // "sbEDITSLG"-ish

/// Fingerprint the graph that results from applying `edits` to `base`,
/// without materializing it.
///
/// The digest covers the base *through its own fingerprint* plus the
/// literal edit sequence, under a separate domain. Crucially this means a
/// mapped `.sbg` base keeps its O(1) file-identity path
/// ([`fingerprint_graph`]'s `MAPPED_DOMAIN` branch): fingerprinting an
/// edit-log overlay on a multi-GB mapping never faults the payload in —
/// cost is O(edits), not O(m) (pinned by `tests/outofcore.rs`).
///
/// Two logs with the same net effect but different edit sequences hash
/// differently. That is deliberate and safe: distinct keys can only cost
/// a duplicate cache entry, never a wrong hit, and it keeps the hash
/// independent of base content (a net-effect hash would need the base's
/// edge membership — an O(m) read on mapped graphs).
///
/// An empty log degenerates to [`fingerprint_graph`], so "no edits" and
/// "the base itself" share cache entries.
pub fn fingerprint_with_edits(base: &Graph, edits: &EditLog, seed: u64) -> u64 {
    fingerprint_with_edits_from(fingerprint_graph(base, seed), edits, seed)
}

/// [`fingerprint_with_edits`] when the base's fingerprint is already
/// known. The base graph enters the digest only through `base_fp`, so a
/// caller that cached the fingerprint (a serve mutation stream chaining
/// rebases, say) pays O(edits) here even when the base is a large heap
/// CSR whose content hash would be O(m). An empty log returns `base_fp`
/// unchanged.
pub fn fingerprint_with_edits_from(base_fp: u64, edits: &EditLog, seed: u64) -> u64 {
    if edits.is_empty() {
        return base_fp;
    }
    let mut h = WordHasher::new(seed ^ EDIT_DOMAIN);
    h.write(base_fp);
    h.write(edits.len() as u64);
    for e in edits.edits() {
        match *e {
            Edit::AddEdge(u, v) => {
                h.write(0);
                h.write(((u as u64) << 32) | v as u64);
            }
            Edit::RemoveEdge(u, v) => {
                h.write(1);
                h.write(((u as u64) << 32) | v as u64);
            }
            Edit::AddVertex(n) => {
                h.write(2);
                h.write(n as u64);
            }
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_graph::builder::from_edge_list;

    #[test]
    fn edit_fingerprint_depends_only_on_base_fingerprint_and_log() {
        let g = from_edge_list(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mut log = EditLog::new();
        log.add_edge(0, 4).remove_edge(1, 2);
        let a = fingerprint_with_edits(&g, &log, DEFAULT_SEED);
        assert_eq!(a, fingerprint_with_edits(&g, &log, DEFAULT_SEED));
        // Distinct from the base, the edited content, and other logs.
        assert_ne!(a, fingerprint_graph(&g, DEFAULT_SEED));
        assert_ne!(a, fingerprint_graph(&log.materialize(&g), DEFAULT_SEED));
        let mut other = EditLog::new();
        other.add_edge(0, 4).remove_edge(1, 3);
        assert_ne!(a, fingerprint_with_edits(&g, &other, DEFAULT_SEED));
        // Order-sensitive: same net effect, different sequence, new key.
        let mut reordered = EditLog::new();
        reordered.remove_edge(1, 2).add_edge(0, 4);
        assert_ne!(a, fingerprint_with_edits(&g, &reordered, DEFAULT_SEED));
        // Empty log degenerates to the plain graph fingerprint.
        assert_eq!(
            fingerprint_with_edits(&g, &EditLog::new(), DEFAULT_SEED),
            fingerprint_graph(&g, DEFAULT_SEED)
        );
    }

    #[test]
    fn precomputed_base_fingerprint_path_agrees() {
        let g = from_edge_list(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let base_fp = fingerprint_graph(&g, DEFAULT_SEED);
        let mut log = EditLog::new();
        log.add_edge(0, 4).remove_edge(1, 2);
        assert_eq!(
            fingerprint_with_edits(&g, &log, DEFAULT_SEED),
            fingerprint_with_edits_from(base_fp, &log, DEFAULT_SEED)
        );
        assert_eq!(
            fingerprint_with_edits_from(base_fp, &EditLog::new(), DEFAULT_SEED),
            base_fp
        );
        // Chaining through an intermediate fingerprint keys differently
        // from applying the concatenated log in one step: a rebased
        // stream gets fresh cache identities, never wrong hits.
        let mut more = EditLog::new();
        more.add_edge(2, 4);
        let chained = fingerprint_with_edits_from(
            fingerprint_with_edits_from(base_fp, &log, DEFAULT_SEED),
            &more,
            DEFAULT_SEED,
        );
        let mut concat = log.clone();
        concat.extend(&more);
        assert_ne!(
            chained,
            fingerprint_with_edits_from(base_fp, &concat, DEFAULT_SEED)
        );
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let g = from_edge_list(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let a = fingerprint_graph(&g, DEFAULT_SEED);
        assert_eq!(a, fingerprint_graph(&g, DEFAULT_SEED));
        assert_ne!(a, fingerprint_graph(&g, DEFAULT_SEED ^ 1));
    }

    #[test]
    fn structure_sensitive() {
        let path = from_edge_list(4, &[(0, 1), (1, 2), (2, 3)]);
        let star = from_edge_list(4, &[(0, 1), (0, 2), (0, 3)]);
        let wider = from_edge_list(5, &[(0, 1), (1, 2), (2, 3)]);
        let base = fingerprint_graph(&path, DEFAULT_SEED);
        assert_ne!(base, fingerprint_graph(&star, DEFAULT_SEED));
        assert_ne!(
            base,
            fingerprint_graph(&wider, DEFAULT_SEED),
            "an extra isolated vertex must change the fingerprint"
        );
    }

    #[test]
    fn small_inputs_do_not_collide_trivially() {
        // Hash every path graph up to 64 vertices; all 64 digests distinct.
        let mut seen = std::collections::HashSet::new();
        for n in 1..=64u32 {
            let edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
            let g = from_edge_list(n as usize, &edges);
            assert!(seen.insert(fingerprint_graph(&g, DEFAULT_SEED)), "n={n}");
        }
    }

    #[test]
    fn word_hasher_tail_handling() {
        // Streams shorter than one stripe and stripe+tail shapes must all
        // be distinct (regression guard for the tail fold).
        let digest = |ws: &[u64]| {
            let mut h = WordHasher::new(1);
            for &w in ws {
                h.write(w);
            }
            h.finish()
        };
        let cases: Vec<Vec<u64>> = vec![
            vec![],
            vec![0],
            vec![0, 0],
            vec![1],
            vec![0, 1],
            vec![1, 0],
            vec![0, 0, 0, 0],
            vec![0, 0, 0, 0, 0],
            vec![0, 0, 0, 0, 1],
        ];
        let mut seen = std::collections::HashSet::new();
        for c in &cases {
            assert!(seen.insert(digest(c)), "collision on {c:?}");
        }
    }
}
