//! Batch reports: the cached-vs-fresh wall-clock table and its JSON twin
//! (`results/BENCH_engine.json`).

use crate::batch::{JobOutcome, JobRecord};
use crate::cache::CacheStats;
use std::fs;
use std::io::Write;
use std::path::Path;

/// Column keys of every record in the report, in order. Pinned by the
/// golden tests: changing this is a schema change.
pub const RECORD_KEYS: [&str; 12] = [
    "job",
    "graph",
    "config",
    "seed",
    "outcome",
    "decomp",
    "decompose_ms",
    "solve_ms",
    "wall_ms",
    "fresh_wall_ms",
    "speedup",
    "detail",
];

/// Title written to the JSON report.
pub const REPORT_TITLE: &str = "Engine batch — cached vs fresh wall-clock";

/// The result of one batch run (see [`crate::batch`]).
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Per-job records, in submission order.
    pub jobs: Vec<JobRecord>,
    /// Graph-cache counters at the end of the batch.
    pub graph_cache: CacheStats,
    /// Decomposition-cache counters at the end of the batch.
    pub decomp_cache: CacheStats,
    /// Wall clock of the whole batch.
    pub total_wall_ms: f64,
    /// Wall clock of the cache-disabled reference batch, when
    /// [`crate::run_batch_compare`] ran one.
    pub fresh_total_wall_ms: Option<f64>,
}

fn fmt_ms(ms: f64) -> String {
    if ms >= 100.0 {
        format!("{ms:.0}")
    } else if ms >= 1.0 {
        format!("{ms:.1}")
    } else {
        format!("{ms:.3}")
    }
}

impl BatchReport {
    /// True when every job finished `ok`.
    pub fn all_ok(&self) -> bool {
        self.jobs.iter().all(|j| j.outcome == JobOutcome::Ok)
    }

    /// Sum of per-job wall clocks in the cached run.
    pub fn cached_job_ms(&self) -> f64 {
        self.jobs.iter().map(|j| j.wall_ms).sum()
    }

    /// Sum of per-job wall clocks in the fresh reference run, when known.
    pub fn fresh_job_ms(&self) -> Option<f64> {
        self.jobs.iter().map(|j| j.fresh_wall_ms).sum()
    }

    /// Batch speedup of cached over fresh (fresh ÷ cached job time), when a
    /// comparison ran and the cached time is nonzero.
    pub fn speedup(&self) -> Option<f64> {
        let cached = self.cached_job_ms();
        let fresh = self.fresh_job_ms()?;
        (cached > 0.0).then(|| fresh / cached)
    }

    fn record_cells(job: &JobRecord) -> Vec<String> {
        let speedup = match (job.fresh_wall_ms, job.wall_ms) {
            (Some(f), w) if w > 0.0 => format!("{:.2}x", f / w),
            _ => "-".into(),
        };
        vec![
            job.label.clone(),
            job.graph.clone(),
            job.config.clone(),
            job.seed.to_string(),
            job.outcome.label().to_string(),
            match job.decomp_cached {
                Some(true) => "cached".into(),
                Some(false) => "fresh".into(),
                None => "-".into(),
            },
            fmt_ms(job.decompose_ms),
            fmt_ms(job.solve_ms),
            fmt_ms(job.wall_ms),
            job.fresh_wall_ms.map_or_else(|| "-".into(), fmt_ms),
            speedup,
            job.detail.clone(),
        ]
    }

    fn total_cells(&self) -> Vec<String> {
        let cached = self.cached_job_ms();
        let fresh = self.fresh_job_ms();
        vec![
            "TOTAL".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            if self.all_ok() {
                "ok".into()
            } else {
                "partial".into()
            },
            "-".into(),
            fmt_ms(self.jobs.iter().map(|j| j.decompose_ms).sum()),
            fmt_ms(self.jobs.iter().map(|j| j.solve_ms).sum()),
            fmt_ms(cached),
            fresh.map_or_else(|| "-".into(), fmt_ms),
            self.speedup()
                .map_or_else(|| "-".into(), |s| format!("{s:.2}x")),
            format!(
                "graph cache {}h/{}m, decomp cache {}h/{}m",
                self.graph_cache.hits,
                self.graph_cache.misses,
                self.decomp_cache.hits,
                self.decomp_cache.misses
            ),
        ]
    }

    /// All rows (one per job plus the TOTAL row), each aligned with
    /// [`RECORD_KEYS`].
    pub fn rows(&self) -> Vec<Vec<String>> {
        let mut rows: Vec<Vec<String>> = self.jobs.iter().map(Self::record_cells).collect();
        rows.push(self.total_cells());
        rows
    }

    /// One cache's counters as the flat `"key":"value"` JSON object the
    /// report embeds under `"graph_cache"` / `"decomp_cache"` — all values
    /// strings, like every other report cell.
    fn cache_json(stats: &CacheStats) -> String {
        format!(
            "{{\"hits\":\"{}\",\"misses\":\"{}\",\"evictions\":\"{}\",\"inserts\":\"{}\",\"hit_rate\":\"{}\"}}",
            stats.hits,
            stats.misses,
            stats.evictions,
            stats.inserts,
            json_escape(&stats.hit_rate_label())
        )
    }

    /// Human cache summary appended below the markdown table.
    fn cache_lines(&self) -> String {
        let line = |name: &str, s: &CacheStats| {
            format!(
                "- {name} cache: {} hits / {} misses ({} hit rate), {} inserts, {} evictions\n",
                s.hits,
                s.misses,
                s.hit_rate_label(),
                s.inserts,
                s.evictions
            )
        };
        let mut out = String::new();
        out.push_str(&line("graph", &self.graph_cache));
        out.push_str(&line("decomp", &self.decomp_cache));
        out
    }

    /// Render as a GitHub-flavored markdown table.
    pub fn render_markdown(&self) -> String {
        let headers: Vec<String> = RECORD_KEYS.iter().map(|k| k.to_string()).collect();
        let rows = self.rows();
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        for row in &rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            let padded: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        let mut out = format!("\n## {REPORT_TITLE}\n\n");
        out.push_str(&fmt_row(&headers));
        out.push('\n');
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("|-{}-|\n", sep.join("-|-")));
        for row in &rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out.push('\n');
        out.push_str(&self.cache_lines());
        out
    }

    /// Save as JSON at `path` — the same `{"title", "records": [...]}`
    /// shape the bench tables use, so downstream tooling reads both.
    /// Parent directories are created; errors carry the offending path.
    pub fn save_json(&self, path: &Path) -> Result<(), String> {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create directory {}: {e}", parent.display()))?;
        }
        let mut f =
            fs::File::create(path).map_err(|e| format!("cannot create {}: {e}", path.display()))?;
        let records: Vec<String> = self
            .rows()
            .iter()
            .map(|row| {
                let fields: Vec<String> = RECORD_KEYS
                    .iter()
                    .zip(row)
                    .map(|(k, c)| format!("\"{}\":\"{}\"", json_escape(k), json_escape(c)))
                    .collect();
                format!("{{{}}}", fields.join(","))
            })
            .collect();
        writeln!(
            f,
            "{{\"title\":\"{}\",\"records\":[{}],\"graph_cache\":{},\"decomp_cache\":{}}}",
            json_escape(REPORT_TITLE),
            records.join(","),
            Self::cache_json(&self.graph_cache),
            Self::cache_json(&self.decomp_cache)
        )
        .map_err(|e| format!("cannot write {}: {e}", path.display()))
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(label: &str, wall: f64, fresh: Option<f64>) -> JobRecord {
        JobRecord {
            label: label.into(),
            graph: "gen:lp1@0.2#42".into(),
            config: "mm-rand:10@cpu/compact".into(),
            seed: 42,
            outcome: JobOutcome::Ok,
            detail: "matching of 3 edges".into(),
            graph_cached: false,
            decomp_cached: Some(false),
            decompose_ms: 1.0,
            solve_ms: 2.0,
            wall_ms: wall,
            fresh_wall_ms: fresh,
            solution: None,
        }
    }

    fn report() -> BatchReport {
        BatchReport {
            jobs: vec![record("a", 10.0, Some(30.0)), record("b", 10.0, Some(10.0))],
            graph_cache: CacheStats {
                hits: 2,
                misses: 1,
                evictions: 0,
                inserts: 1,
            },
            decomp_cache: CacheStats::default(),
            total_wall_ms: 20.0,
            fresh_total_wall_ms: Some(40.0),
        }
    }

    #[test]
    fn speedup_is_fresh_over_cached() {
        assert_eq!(report().speedup(), Some(2.0));
        let mut r = report();
        r.jobs[0].fresh_wall_ms = None;
        assert_eq!(r.speedup(), None, "partial comparisons have no speedup");
    }

    #[test]
    fn rows_align_with_record_keys() {
        let r = report();
        for row in r.rows() {
            assert_eq!(row.len(), RECORD_KEYS.len());
        }
        let md = r.render_markdown();
        assert!(md.contains("## Engine batch"));
        assert!(md.contains("| a "));
        assert!(md.contains("TOTAL"));
        assert!(md.contains("3.00x"), "per-job speedup column: {md}");
        assert!(
            md.contains("graph cache: 2 hits / 1 misses (66.7% hit rate), 1 inserts, 0 evictions"),
            "cache summary lines: {md}"
        );
        assert!(md.contains("decomp cache: 0 hits / 0 misses (- hit rate)"));
    }

    #[test]
    fn json_carries_cache_sections_with_hit_rates() {
        let dir = std::env::temp_dir().join("sb-engine-test-report-caches");
        std::fs::remove_dir_all(&dir).ok();
        let path = dir.join("BENCH_engine.json");
        report().save_json(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains(
            "\"graph_cache\":{\"hits\":\"2\",\"misses\":\"1\",\"evictions\":\"0\",\
             \"inserts\":\"1\",\"hit_rate\":\"66.7%\"}"
        ));
        assert!(text.contains("\"decomp_cache\":{\"hits\":\"0\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_json_creates_parents_and_names_path_on_error() {
        let dir = std::env::temp_dir().join("sb-engine-test-report/nested");
        std::fs::remove_dir_all(dir.parent().unwrap()).ok();
        let path = dir.join("BENCH_engine.json");
        report().save_json(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("{\"title\":\"Engine batch"));
        assert!(text.contains("\"job\":\"a\""));
        std::fs::remove_dir_all(dir.parent().unwrap()).ok();

        // A directory in place of the file: the error must name the path.
        let clash = std::env::temp_dir().join("sb-engine-test-report-clash");
        std::fs::create_dir_all(&clash).unwrap();
        let e = report().save_json(&clash).unwrap_err();
        assert!(e.contains("sb-engine-test-report-clash"), "{e}");
        std::fs::remove_dir_all(&clash).ok();
    }
}
