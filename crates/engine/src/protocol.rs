//! The `sbreak serve` wire protocol: JSONL over TCP.
//!
//! One request object per line in, one response object per line out.
//! Requests carry an `op` (`solve`, `stats`, `ping`, `cancel`,
//! `shutdown`); responses carry a `status` (`ok`, `error`, `overloaded`,
//! `timeout`, `cancelled`) and echo the request `id` so clients may
//! pipeline. Parsing is strict — unknown ops, unknown keys, and
//! wrong-typed fields are rejected with a typed `bad_request` error
//! response instead of being ignored, so a typo'd field name fails loudly
//! (the same stance the batch jobs-file parser takes).
//!
//! The JSON reader is the offline-friendly recursive-descent parser from
//! `sb-metrics`; serialization is hand-rolled here. The `stats` response
//! body and the loadgen report are schema-pinned by the golden tests.

use crate::jobs::{parse_arch, parse_solver, JobSpec};
use crate::{JobOutcome, JobRecord};
use sb_core::common::FrontierMode;
use sb_metrics::{escape_json, parse_json_value, JsonValue};

/// Everything a `solve` request may carry, as raw strings plus defaults —
/// resolved into a [`JobSpec`] by [`SolveParams::to_job_spec`]. Also the
/// client-side builder ([`SolveParams::to_json`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SolveParams {
    /// Client-chosen request id, echoed on the response ("" = none).
    pub id: String,
    /// Tenant the request's cache inserts are charged to.
    pub tenant: String,
    /// Graph source string (`gen:<name>`, `inline:...`, or a path).
    pub graph: String,
    /// Scale factor for generated graphs.
    pub scale: f64,
    /// Generation seed (defaults to the solver seed).
    pub graph_seed: Option<u64>,
    /// Problem family: `mm` | `color` | `mis`.
    pub problem: String,
    /// Algorithm: `baseline` | `bridge` | `rand[:P]` | `degk[:K]` | `bicc`.
    pub algo: String,
    /// `cpu` | `gpu`.
    pub arch: String,
    /// `dense` | `compact`.
    pub frontier: String,
    /// Solver seed.
    pub seed: u64,
    /// Per-request thread-pool pin.
    pub threads: Option<usize>,
    /// Per-request deadline: total milliseconds from admission (queue wait
    /// included) before the request is abandoned with `timeout`.
    pub deadline_ms: Option<u64>,
    /// Whether the response should carry the rendered solution text.
    pub want_solution: bool,
    /// Test hook: hold the worker for this long before solving. Honored
    /// only when the server runs with `allow_debug` (integration tests);
    /// rejected otherwise.
    pub debug_sleep_ms: u64,
}

impl SolveParams {
    /// A solve request with every optional field at its default.
    pub fn new(graph: &str, problem: &str, algo: &str) -> SolveParams {
        SolveParams {
            id: String::new(),
            tenant: "anon".into(),
            graph: graph.into(),
            scale: 1.0,
            graph_seed: None,
            problem: problem.into(),
            algo: algo.into(),
            arch: "cpu".into(),
            frontier: "compact".into(),
            seed: 42,
            threads: None,
            deadline_ms: None,
            want_solution: false,
            debug_sleep_ms: 0,
        }
    }

    /// Resolve the raw fields into an executable [`JobSpec`].
    pub fn to_job_spec(&self) -> Result<JobSpec, String> {
        let solver = parse_solver(&self.problem, &self.algo)?;
        let arch = parse_arch(&self.arch)?;
        let frontier: FrontierMode = self.frontier.parse()?;
        if !(self.scale.is_finite() && self.scale > 0.0) {
            return Err(format!(
                "'scale' must be a positive number, got {}",
                self.scale
            ));
        }
        let label = if self.id.is_empty() {
            "solve".into()
        } else {
            self.id.clone()
        };
        Ok(JobSpec {
            label,
            graph: self.graph.clone(),
            scale: self.scale,
            graph_seed: self.graph_seed,
            solver,
            arch,
            frontier,
            seed: self.seed,
            threads: self.threads,
            // The deadline covers queue wait and solve together; the
            // remaining budget is applied by the server at dequeue.
            timeout_ms: None,
        })
    }

    /// Render the request as one JSONL line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"op\":\"solve\"");
        if !self.id.is_empty() {
            s += &format!(",\"id\":\"{}\"", escape_json(&self.id));
        }
        s += &format!(",\"tenant\":\"{}\"", escape_json(&self.tenant));
        s += &format!(",\"graph\":\"{}\"", escape_json(&self.graph));
        s += &format!(",\"scale\":{}", self.scale);
        if let Some(gs) = self.graph_seed {
            s += &format!(",\"graph_seed\":{gs}");
        }
        s += &format!(",\"problem\":\"{}\"", escape_json(&self.problem));
        s += &format!(",\"algo\":\"{}\"", escape_json(&self.algo));
        s += &format!(",\"arch\":\"{}\"", escape_json(&self.arch));
        s += &format!(",\"frontier\":\"{}\"", escape_json(&self.frontier));
        s += &format!(",\"seed\":{}", self.seed);
        if let Some(t) = self.threads {
            s += &format!(",\"threads\":{t}");
        }
        if let Some(d) = self.deadline_ms {
            s += &format!(",\"deadline_ms\":{d}");
        }
        if self.want_solution {
            s += ",\"want_solution\":true";
        }
        if self.debug_sleep_ms > 0 {
            s += &format!(",\"debug_sleep_ms\":{}", self.debug_sleep_ms);
        }
        s.push('}');
        s
    }
}

/// One parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run one solve job.
    Solve(Box<SolveParams>),
    /// Report server/cache/latency statistics.
    Stats,
    /// Liveness probe.
    Ping,
    /// Cancel the in-flight or queued request with this id (same
    /// connection only).
    Cancel {
        /// Id of the request to cancel.
        id: String,
    },
    /// Drain and stop the server.
    Shutdown,
}

const SOLVE_KEYS: &[&str] = &[
    "op",
    "id",
    "tenant",
    "graph",
    "scale",
    "graph_seed",
    "problem",
    "algo",
    "arch",
    "frontier",
    "seed",
    "threads",
    "deadline_ms",
    "want_solution",
    "debug_sleep_ms",
];

fn want_str(obj: &JsonValue, key: &str) -> Result<Option<String>, String> {
    match obj.get(key) {
        None => Ok(None),
        Some(JsonValue::Str(s)) => Ok(Some(s.clone())),
        Some(_) => Err(format!("'{key}' must be a string")),
    }
}

/// The largest integer a JSON number (an f64 on both ends of the wire)
/// carries exactly. Larger values would round silently, so the protocol
/// rejects them instead — a solve with a quietly altered seed is worse
/// than a typed error.
pub const MAX_SAFE_JSON_INT: u64 = (1 << 53) - 1;

fn want_u64(obj: &JsonValue, key: &str) -> Result<Option<u64>, String> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => match v.as_u64() {
            Some(n) if n <= MAX_SAFE_JSON_INT => Ok(Some(n)),
            Some(n) => Err(format!(
                "'{key}' value {n} exceeds 2^53-1 and would lose precision in JSON"
            )),
            None => Err(format!("'{key}' must be a non-negative integer")),
        },
    }
}

fn want_f64(obj: &JsonValue, key: &str) -> Result<Option<f64>, String> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| format!("'{key}' must be a number")),
    }
}

fn want_bool(obj: &JsonValue, key: &str) -> Result<Option<bool>, String> {
    match obj.get(key) {
        None => Ok(None),
        Some(JsonValue::Bool(b)) => Ok(Some(*b)),
        Some(_) => Err(format!("'{key}' must be a boolean")),
    }
}

/// Parse one request line. Errors are client-facing `bad_request` details.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = parse_json_value(line).map_err(|e| format!("invalid JSON: {e}"))?;
    let members = v.as_obj().ok_or("request must be a JSON object")?;
    let op = want_str(&v, "op")?.ok_or("request is missing 'op'")?;
    match op.as_str() {
        "solve" => {
            for (key, _) in members {
                if !SOLVE_KEYS.contains(&key.as_str()) {
                    return Err(format!(
                        "unknown key '{key}' for op solve (known keys: {})",
                        SOLVE_KEYS.join(", ")
                    ));
                }
            }
            let graph = want_str(&v, "graph")?.ok_or("solve is missing 'graph'")?;
            let problem = want_str(&v, "problem")?.ok_or("solve is missing 'problem'")?;
            let algo = want_str(&v, "algo")?.ok_or("solve is missing 'algo'")?;
            let mut p = SolveParams::new(&graph, &problem, &algo);
            if let Some(id) = want_str(&v, "id")? {
                p.id = id;
            }
            if let Some(tenant) = want_str(&v, "tenant")? {
                if tenant.is_empty() {
                    return Err("'tenant' must not be empty".into());
                }
                p.tenant = tenant;
            }
            if let Some(scale) = want_f64(&v, "scale")? {
                p.scale = scale;
            }
            p.graph_seed = want_u64(&v, "graph_seed")?;
            if let Some(arch) = want_str(&v, "arch")? {
                p.arch = arch;
            }
            if let Some(frontier) = want_str(&v, "frontier")? {
                p.frontier = frontier;
            }
            if let Some(seed) = want_u64(&v, "seed")? {
                p.seed = seed;
            }
            p.threads = want_u64(&v, "threads")?.map(|t| t as usize);
            p.deadline_ms = want_u64(&v, "deadline_ms")?;
            p.want_solution = want_bool(&v, "want_solution")?.unwrap_or(false);
            p.debug_sleep_ms = want_u64(&v, "debug_sleep_ms")?.unwrap_or(0);
            // Fail malformed solver/arch/frontier fields at parse time so
            // the client gets a bad_request, not a failed job.
            p.to_job_spec()?;
            Ok(Request::Solve(Box::new(p)))
        }
        "stats" => Ok(Request::Stats),
        "ping" => Ok(Request::Ping),
        "cancel" => {
            let id = want_str(&v, "id")?.ok_or("cancel is missing 'id'")?;
            Ok(Request::Cancel { id })
        }
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!(
            "unknown op '{other}' (expected solve, stats, ping, cancel, or shutdown)"
        )),
    }
}

fn id_prefix(id: &str) -> String {
    if id.is_empty() {
        String::new()
    } else {
        format!("\"id\":\"{}\",", escape_json(id))
    }
}

/// Response for a completed solve, whatever its outcome. `queue_ms` is the
/// time spent waiting for a worker slot.
pub fn solve_response_json(
    id: &str,
    record: &JobRecord,
    queue_ms: f64,
    want_solution: bool,
) -> String {
    let mut s = format!("{{{}", id_prefix(id));
    match &record.outcome {
        JobOutcome::Ok => s += "\"status\":\"ok\"",
        JobOutcome::TimedOut => s += "\"status\":\"timeout\"",
        JobOutcome::Cancelled => s += "\"status\":\"cancelled\"",
        JobOutcome::Failed(_) => s += "\"status\":\"error\",\"code\":\"failed\"",
    }
    s += &format!(",\"detail\":\"{}\"", escape_json(&record.detail));
    s += &format!(",\"graph\":\"{}\"", escape_json(&record.graph));
    s += &format!(",\"config\":\"{}\"", escape_json(&record.config));
    s += &format!(",\"graph_cached\":{}", record.graph_cached);
    match record.decomp_cached {
        Some(b) => s += &format!(",\"decomp_cached\":{b}"),
        None => s += ",\"decomp_cached\":null",
    }
    s += &format!(",\"decompose_ms\":{:.3}", record.decompose_ms);
    s += &format!(",\"solve_ms\":{:.3}", record.solve_ms);
    s += &format!(",\"wall_ms\":{:.3}", record.wall_ms);
    s += &format!(",\"queue_ms\":{queue_ms:.3}");
    if want_solution {
        match &record.solution {
            Some(solution) => {
                s += &format!(",\"solution\":\"{}\"", escape_json(&solution.render()));
            }
            None => s += ",\"solution\":null",
        }
    }
    s.push('}');
    s
}

/// A typed failure: `status: error` plus a machine-readable `code`
/// (`bad_request`, `failed`, `shutting_down`).
pub fn error_response_json(id: &str, code: &str, detail: &str) -> String {
    format!(
        "{{{}\"status\":\"error\",\"code\":\"{}\",\"detail\":\"{}\"}}",
        id_prefix(id),
        escape_json(code),
        escape_json(detail)
    )
}

/// Admission-control rejection: the bounded queue is full.
pub fn overloaded_response_json(id: &str, queue_depth: usize, queue_cap: usize) -> String {
    format!(
        "{{{}\"status\":\"overloaded\",\"detail\":\"queue full ({queue_depth}/{queue_cap})\"}}",
        id_prefix(id)
    )
}

/// Queued-too-long / abandoned-at-deadline rejection.
pub fn timeout_response_json(id: &str, detail: &str) -> String {
    format!(
        "{{{}\"status\":\"timeout\",\"detail\":\"{}\"}}",
        id_prefix(id),
        escape_json(detail)
    )
}

/// Cancellation acknowledgement for a request that never ran.
pub fn cancelled_response_json(id: &str, detail: &str) -> String {
    format!(
        "{{{}\"status\":\"cancelled\",\"detail\":\"{}\"}}",
        id_prefix(id),
        escape_json(detail)
    )
}

/// Plain `ok` acknowledgement for control ops (`ping`, `shutdown`).
pub fn ack_response_json(op: &str) -> String {
    format!("{{\"status\":\"ok\",\"op\":\"{}\"}}", escape_json(op))
}

/// Acknowledgement for a `cancel` op: whether the id was found in flight.
pub fn cancel_ack_json(id: &str, found: bool) -> String {
    format!(
        "{{\"status\":\"ok\",\"op\":\"cancel\",\"id\":\"{}\",\"found\":{found}}}",
        escape_json(id)
    )
}

/// One parsed response line, with typed accessors over the raw document.
#[derive(Debug, Clone)]
pub struct Reply {
    /// The parsed response document.
    pub raw: JsonValue,
}

impl Reply {
    /// Parse one response line.
    pub fn parse(line: &str) -> Result<Reply, String> {
        let raw = parse_json_value(line).map_err(|e| format!("invalid response JSON: {e}"))?;
        if raw.as_obj().is_none() {
            return Err("response must be a JSON object".into());
        }
        Ok(Reply { raw })
    }

    /// The `status` field ("" when absent).
    pub fn status(&self) -> &str {
        self.raw
            .get("status")
            .and_then(|v| v.as_str())
            .unwrap_or("")
    }

    /// The echoed request id ("" when absent).
    pub fn id(&self) -> &str {
        self.raw.get("id").and_then(|v| v.as_str()).unwrap_or("")
    }

    /// A string field.
    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.raw.get(key).and_then(|v| v.as_str())
    }

    /// A numeric field.
    pub fn num_field(&self, key: &str) -> Option<f64> {
        self.raw.get(key).and_then(|v| v.as_f64())
    }

    /// A boolean field.
    pub fn bool_field(&self, key: &str) -> Option<bool> {
        match self.raw.get(key) {
            Some(JsonValue::Bool(b)) => Some(*b),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Solver;
    use sb_core::matching::MmAlgorithm;

    #[test]
    fn solve_roundtrips_through_json() {
        let mut p = SolveParams::new("gen:lp1", "mm", "rand:4");
        p.id = "r7".into();
        p.tenant = "team-a".into();
        p.scale = 0.25;
        p.graph_seed = Some(9);
        p.seed = 3;
        p.threads = Some(2);
        p.deadline_ms = Some(1500);
        p.want_solution = true;
        let parsed = parse_request(&p.to_json()).unwrap();
        assert_eq!(parsed, Request::Solve(Box::new(p.clone())));
        let job = p.to_job_spec().unwrap();
        assert_eq!(job.solver, Solver::Mm(MmAlgorithm::Rand { partitions: 4 }));
        assert_eq!(job.label, "r7");
        assert_eq!(job.scale, 0.25);
        assert_eq!(job.graph_seed, Some(9));
        assert_eq!(job.threads, Some(2));
        assert_eq!(job.timeout_ms, None, "deadline is applied at dequeue");
    }

    #[test]
    fn control_ops_parse() {
        assert_eq!(parse_request(r#"{"op":"ping"}"#).unwrap(), Request::Ping);
        assert_eq!(parse_request(r#"{"op":"stats"}"#).unwrap(), Request::Stats);
        assert_eq!(
            parse_request(r#"{"op":"shutdown"}"#).unwrap(),
            Request::Shutdown
        );
        assert_eq!(
            parse_request(r#"{"op":"cancel","id":"r1"}"#).unwrap(),
            Request::Cancel { id: "r1".into() }
        );
    }

    #[test]
    fn malformed_requests_get_typed_details() {
        let cases = [
            ("not json at all", "invalid JSON"),
            ("[1,2]", "must be a JSON object"),
            (r#"{"graph":"gen:lp1"}"#, "missing 'op'"),
            (r#"{"op":"quux"}"#, "unknown op 'quux'"),
            (
                r#"{"op":"solve","problem":"mm","algo":"bicc"}"#,
                "missing 'graph'",
            ),
            (
                r#"{"op":"solve","graph":"gen:lp1","problem":"mm","algo":"bicc","bogus":1}"#,
                "unknown key 'bogus'",
            ),
            (
                r#"{"op":"solve","graph":"gen:lp1","problem":"mm","algo":"bicc","seed":"x"}"#,
                "'seed' must be a non-negative integer",
            ),
            (
                r#"{"op":"solve","graph":"gen:lp1","problem":"mm","algo":"bicc","seed":9610570636375330354}"#,
                "lose precision",
            ),
            (
                r#"{"op":"solve","graph":"gen:lp1","problem":"lp","algo":"bicc"}"#,
                "unknown problem",
            ),
            (
                r#"{"op":"solve","graph":"gen:lp1","problem":"mm","algo":"bicc","arch":"tpu"}"#,
                "unknown arch",
            ),
            (r#"{"op":"cancel"}"#, "missing 'id'"),
        ];
        for (line, needle) in cases {
            let err = parse_request(line).unwrap_err();
            assert!(err.contains(needle), "{line} → {err}");
        }
    }

    #[test]
    fn responses_parse_back_with_typed_fields() {
        let record = JobRecord {
            label: "r1".into(),
            graph: "gen:lp1@0.05#42".into(),
            config: "mm-rand:4@cpu/compact".into(),
            seed: 11,
            outcome: JobOutcome::Ok,
            detail: "matching of 3 edges".into(),
            graph_cached: true,
            decomp_cached: Some(true),
            decompose_ms: 0.0,
            solve_ms: 1.25,
            wall_ms: 1.5,
            fresh_wall_ms: None,
            solution: Some(crate::Solution::Mate(vec![1, 0, 3, 2])),
        };
        let reply = Reply::parse(&solve_response_json("r1", &record, 0.5, true)).unwrap();
        assert_eq!(reply.status(), "ok");
        assert_eq!(reply.id(), "r1");
        assert_eq!(reply.bool_field("graph_cached"), Some(true));
        assert_eq!(reply.bool_field("decomp_cached"), Some(true));
        assert_eq!(reply.num_field("queue_ms"), Some(0.5));
        assert_eq!(reply.str_field("solution"), Some("0 1\n2 3\n"));

        let reply = Reply::parse(&error_response_json("x", "bad_request", "nope")).unwrap();
        assert_eq!(reply.status(), "error");
        assert_eq!(reply.str_field("code"), Some("bad_request"));
        let reply = Reply::parse(&overloaded_response_json("", 8, 8)).unwrap();
        assert_eq!(reply.status(), "overloaded");
        assert_eq!(reply.id(), "");
        let reply = Reply::parse(&cancel_ack_json("r9", true)).unwrap();
        assert_eq!(reply.bool_field("found"), Some(true));
    }
}
