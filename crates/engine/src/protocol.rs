//! The `sbreak serve` wire protocol: JSONL over TCP.
//!
//! One request object per line in, one response object per line out.
//! Requests carry an `op` (`solve`, `mutate`, `stats`, `ping`, `cancel`,
//! `shutdown`); responses carry a `status` (`ok`, `error`, `overloaded`,
//! `timeout`, `cancelled`) and echo the request `id` so clients may
//! pipeline. Parsing is strict — unknown ops, unknown keys, and
//! wrong-typed fields are rejected with a typed `bad_request` error
//! response instead of being ignored, so a typo'd field name fails loudly
//! (the same stance the batch jobs-file parser takes).
//!
//! The `mutate` op is the dynamic-graph surface: a solve request plus an
//! `edits` string in the [`EditLog`] wire form (`+u-v,-u-v,v:n`). Each
//! mutate appends its edits to the tenant's stream for that
//! `(graph, config, seed)` and repairs the previous solution instead of
//! re-solving; the first mutate of a stream primes it with a fresh solve.
//!
//! The JSON reader is the offline-friendly recursive-descent parser from
//! `sb-metrics`; serialization is hand-rolled here. The `stats` response
//! body and the loadgen report are schema-pinned by the golden tests.

use crate::jobs::{parse_arch, parse_solver, JobSpec};
use crate::{JobOutcome, JobRecord};
use sb_core::common::FrontierMode;
use sb_graph::editlog::EditLog;
use sb_metrics::{escape_json, parse_json_value, JsonValue};

/// Everything a `solve` request may carry, as raw strings plus defaults —
/// resolved into a [`JobSpec`] by [`SolveParams::to_job_spec`]. Also the
/// client-side builder ([`SolveParams::to_json`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SolveParams {
    /// Client-chosen request id, echoed on the response ("" = none).
    pub id: String,
    /// Tenant the request's cache inserts are charged to.
    pub tenant: String,
    /// Graph source string (`gen:<name>`, `inline:...`, or a path).
    pub graph: String,
    /// Scale factor for generated graphs.
    pub scale: f64,
    /// Generation seed (defaults to the solver seed).
    pub graph_seed: Option<u64>,
    /// Problem family: `mm` | `color` | `mis`.
    pub problem: String,
    /// Algorithm: `baseline` | `bridge` | `rand[:P]` | `degk[:K]` | `bicc`.
    pub algo: String,
    /// `cpu` | `gpu`.
    pub arch: String,
    /// `dense` | `compact`.
    pub frontier: String,
    /// Solver seed.
    pub seed: u64,
    /// Per-request thread-pool pin.
    pub threads: Option<usize>,
    /// Per-request deadline: total milliseconds from admission (queue wait
    /// included) before the request is abandoned with `timeout`.
    pub deadline_ms: Option<u64>,
    /// Whether the response should carry the rendered solution text.
    pub want_solution: bool,
    /// Test hook: hold the worker for this long before solving. Honored
    /// only when the server runs with `allow_debug` (integration tests);
    /// rejected otherwise.
    pub debug_sleep_ms: u64,
}

impl SolveParams {
    /// A solve request with every optional field at its default.
    pub fn new(graph: &str, problem: &str, algo: &str) -> SolveParams {
        SolveParams {
            id: String::new(),
            tenant: "anon".into(),
            graph: graph.into(),
            scale: 1.0,
            graph_seed: None,
            problem: problem.into(),
            algo: algo.into(),
            arch: "cpu".into(),
            frontier: "compact".into(),
            seed: 42,
            threads: None,
            deadline_ms: None,
            want_solution: false,
            debug_sleep_ms: 0,
        }
    }

    /// Resolve the raw fields into an executable [`JobSpec`].
    pub fn to_job_spec(&self) -> Result<JobSpec, String> {
        let solver = parse_solver(&self.problem, &self.algo)?;
        let arch = parse_arch(&self.arch)?;
        let frontier: FrontierMode = self.frontier.parse()?;
        if !(self.scale.is_finite() && self.scale > 0.0) {
            return Err(format!(
                "'scale' must be a positive number, got {}",
                self.scale
            ));
        }
        let label = if self.id.is_empty() {
            "solve".into()
        } else {
            self.id.clone()
        };
        Ok(JobSpec {
            label,
            graph: self.graph.clone(),
            scale: self.scale,
            graph_seed: self.graph_seed,
            solver,
            arch,
            frontier,
            seed: self.seed,
            threads: self.threads,
            // The deadline covers queue wait and solve together; the
            // remaining budget is applied by the server at dequeue.
            timeout_ms: None,
        })
    }

    /// Render the request as one JSONL line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"op\":\"solve\"");
        self.push_fields(&mut s);
        s.push('}');
        s
    }

    /// Append the solve fields (shared by the `solve` and `mutate` wire
    /// forms) to a partially-built request object.
    fn push_fields(&self, s: &mut String) {
        if !self.id.is_empty() {
            *s += &format!(",\"id\":\"{}\"", escape_json(&self.id));
        }
        *s += &format!(",\"tenant\":\"{}\"", escape_json(&self.tenant));
        *s += &format!(",\"graph\":\"{}\"", escape_json(&self.graph));
        *s += &format!(",\"scale\":{}", self.scale);
        if let Some(gs) = self.graph_seed {
            *s += &format!(",\"graph_seed\":{gs}");
        }
        *s += &format!(",\"problem\":\"{}\"", escape_json(&self.problem));
        *s += &format!(",\"algo\":\"{}\"", escape_json(&self.algo));
        *s += &format!(",\"arch\":\"{}\"", escape_json(&self.arch));
        *s += &format!(",\"frontier\":\"{}\"", escape_json(&self.frontier));
        *s += &format!(",\"seed\":{}", self.seed);
        if let Some(t) = self.threads {
            *s += &format!(",\"threads\":{t}");
        }
        if let Some(d) = self.deadline_ms {
            *s += &format!(",\"deadline_ms\":{d}");
        }
        if self.want_solution {
            *s += ",\"want_solution\":true";
        }
        if self.debug_sleep_ms > 0 {
            *s += &format!(",\"debug_sleep_ms\":{}", self.debug_sleep_ms);
        }
    }
}

/// A `mutate` request: a solve configuration plus an edit batch in the
/// [`EditLog`] wire form. The solve fields identify the *base* graph and
/// the solver stream the edits extend; the server accumulates edits per
/// `(tenant, graph, config, seed)` and repairs that stream's previous
/// solution rather than re-solving from scratch.
#[derive(Debug, Clone, PartialEq)]
pub struct MutateParams {
    /// The solve configuration (base graph, problem, algo, tenant, ...).
    pub solve: SolveParams,
    /// Edit batch in wire form (`+u-v` add, `-u-v` remove, `v:n` grow to
    /// `n` vertices; comma-separated). May encode an empty batch, which
    /// primes the stream with a fresh solve.
    pub edits: String,
}

impl MutateParams {
    /// A mutate request with every optional solve field at its default.
    pub fn new(graph: &str, problem: &str, algo: &str, edits: &str) -> MutateParams {
        MutateParams {
            solve: SolveParams::new(graph, problem, algo),
            edits: edits.into(),
        }
    }

    /// Parse the edit batch. Validated at request-parse time, so this
    /// cannot fail for a `MutateParams` that came off the wire.
    pub fn edit_log(&self) -> Result<EditLog, String> {
        EditLog::parse(&self.edits).map_err(|e| format!("bad 'edits': {e}"))
    }

    /// Render the request as one JSONL line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"op\":\"mutate\"");
        self.solve.push_fields(&mut s);
        s += &format!(",\"edits\":\"{}\"", escape_json(&self.edits));
        s.push('}');
        s
    }
}

/// One parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run one solve job.
    Solve(Box<SolveParams>),
    /// Stream an edit batch into a solver stream and repair its solution.
    Mutate(Box<MutateParams>),
    /// Report server/cache/latency statistics.
    Stats,
    /// Liveness probe.
    Ping,
    /// Cancel the in-flight or queued request with this id (same
    /// connection only).
    Cancel {
        /// Id of the request to cancel.
        id: String,
    },
    /// Drain and stop the server.
    Shutdown,
}

const SOLVE_KEYS: &[&str] = &[
    "op",
    "id",
    "tenant",
    "graph",
    "scale",
    "graph_seed",
    "problem",
    "algo",
    "arch",
    "frontier",
    "seed",
    "threads",
    "deadline_ms",
    "want_solution",
    "debug_sleep_ms",
];

const MUTATE_KEYS: &[&str] = &[
    "op",
    "id",
    "tenant",
    "graph",
    "scale",
    "graph_seed",
    "problem",
    "algo",
    "arch",
    "frontier",
    "seed",
    "threads",
    "deadline_ms",
    "want_solution",
    "debug_sleep_ms",
    "edits",
];

fn want_str(obj: &JsonValue, key: &str) -> Result<Option<String>, String> {
    match obj.get(key) {
        None => Ok(None),
        Some(JsonValue::Str(s)) => Ok(Some(s.clone())),
        Some(_) => Err(format!("'{key}' must be a string")),
    }
}

/// The largest integer a JSON number (an f64 on both ends of the wire)
/// carries exactly. Larger values would round silently, so the protocol
/// rejects them instead — a solve with a quietly altered seed is worse
/// than a typed error.
pub const MAX_SAFE_JSON_INT: u64 = (1 << 53) - 1;

fn want_u64(obj: &JsonValue, key: &str) -> Result<Option<u64>, String> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => match v.as_u64() {
            Some(n) if n <= MAX_SAFE_JSON_INT => Ok(Some(n)),
            Some(n) => Err(format!(
                "'{key}' value {n} exceeds 2^53-1 and would lose precision in JSON"
            )),
            None => Err(format!("'{key}' must be a non-negative integer")),
        },
    }
}

fn want_f64(obj: &JsonValue, key: &str) -> Result<Option<f64>, String> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| format!("'{key}' must be a number")),
    }
}

fn want_bool(obj: &JsonValue, key: &str) -> Result<Option<bool>, String> {
    match obj.get(key) {
        None => Ok(None),
        Some(JsonValue::Bool(b)) => Ok(Some(*b)),
        Some(_) => Err(format!("'{key}' must be a boolean")),
    }
}

/// Parse the solve-shaped fields shared by `solve` and `mutate`, after
/// the caller has checked the op's key whitelist.
fn parse_solve_fields(v: &JsonValue, op: &str) -> Result<SolveParams, String> {
    let graph = want_str(v, "graph")?.ok_or_else(|| format!("{op} is missing 'graph'"))?;
    let problem = want_str(v, "problem")?.ok_or_else(|| format!("{op} is missing 'problem'"))?;
    let algo = want_str(v, "algo")?.ok_or_else(|| format!("{op} is missing 'algo'"))?;
    let mut p = SolveParams::new(&graph, &problem, &algo);
    if let Some(id) = want_str(v, "id")? {
        p.id = id;
    }
    if let Some(tenant) = want_str(v, "tenant")? {
        if tenant.is_empty() {
            return Err("'tenant' must not be empty".into());
        }
        p.tenant = tenant;
    }
    if let Some(scale) = want_f64(v, "scale")? {
        p.scale = scale;
    }
    p.graph_seed = want_u64(v, "graph_seed")?;
    if let Some(arch) = want_str(v, "arch")? {
        p.arch = arch;
    }
    if let Some(frontier) = want_str(v, "frontier")? {
        p.frontier = frontier;
    }
    if let Some(seed) = want_u64(v, "seed")? {
        p.seed = seed;
    }
    p.threads = want_u64(v, "threads")?.map(|t| t as usize);
    p.deadline_ms = want_u64(v, "deadline_ms")?;
    p.want_solution = want_bool(v, "want_solution")?.unwrap_or(false);
    p.debug_sleep_ms = want_u64(v, "debug_sleep_ms")?.unwrap_or(0);
    // Fail malformed solver/arch/frontier fields at parse time so the
    // client gets a bad_request, not a failed job.
    p.to_job_spec()?;
    Ok(p)
}

fn check_keys(members: &[(String, JsonValue)], op: &str, known: &[&str]) -> Result<(), String> {
    for (key, _) in members {
        if !known.contains(&key.as_str()) {
            return Err(format!(
                "unknown key '{key}' for op {op} (known keys: {})",
                known.join(", ")
            ));
        }
    }
    Ok(())
}

/// Parse one request line. Errors are client-facing `bad_request` details.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = parse_json_value(line).map_err(|e| format!("invalid JSON: {e}"))?;
    let members = v.as_obj().ok_or("request must be a JSON object")?;
    let op = want_str(&v, "op")?.ok_or("request is missing 'op'")?;
    match op.as_str() {
        "solve" => {
            check_keys(members, "solve", SOLVE_KEYS)?;
            let p = parse_solve_fields(&v, "solve")?;
            Ok(Request::Solve(Box::new(p)))
        }
        "mutate" => {
            check_keys(members, "mutate", MUTATE_KEYS)?;
            let solve = parse_solve_fields(&v, "mutate")?;
            let edits = want_str(&v, "edits")?.ok_or("mutate is missing 'edits'")?;
            let m = MutateParams { solve, edits };
            // Malformed or out-of-range edit batches are a bad_request,
            // not a failed job.
            m.edit_log()?;
            Ok(Request::Mutate(Box::new(m)))
        }
        "stats" => Ok(Request::Stats),
        "ping" => Ok(Request::Ping),
        "cancel" => {
            let id = want_str(&v, "id")?.ok_or("cancel is missing 'id'")?;
            Ok(Request::Cancel { id })
        }
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!(
            "unknown op '{other}' (expected solve, mutate, stats, ping, cancel, or shutdown)"
        )),
    }
}

fn id_prefix(id: &str) -> String {
    if id.is_empty() {
        String::new()
    } else {
        format!("\"id\":\"{}\",", escape_json(id))
    }
}

/// Response for a completed solve, whatever its outcome. `queue_ms` is the
/// time spent waiting for a worker slot.
pub fn solve_response_json(
    id: &str,
    record: &JobRecord,
    queue_ms: f64,
    want_solution: bool,
) -> String {
    let mut s = format!("{{{}", id_prefix(id));
    match &record.outcome {
        JobOutcome::Ok => s += "\"status\":\"ok\"",
        JobOutcome::TimedOut => s += "\"status\":\"timeout\"",
        JobOutcome::Cancelled => s += "\"status\":\"cancelled\"",
        JobOutcome::Failed(_) => s += "\"status\":\"error\",\"code\":\"failed\"",
    }
    s += &format!(",\"detail\":\"{}\"", escape_json(&record.detail));
    s += &format!(",\"graph\":\"{}\"", escape_json(&record.graph));
    s += &format!(",\"config\":\"{}\"", escape_json(&record.config));
    s += &format!(",\"graph_cached\":{}", record.graph_cached);
    match record.decomp_cached {
        Some(b) => s += &format!(",\"decomp_cached\":{b}"),
        None => s += ",\"decomp_cached\":null",
    }
    s += &format!(",\"decompose_ms\":{:.3}", record.decompose_ms);
    s += &format!(",\"solve_ms\":{:.3}", record.solve_ms);
    s += &format!(",\"wall_ms\":{:.3}", record.wall_ms);
    s += &format!(",\"queue_ms\":{queue_ms:.3}");
    if want_solution {
        match &record.solution {
            Some(solution) => {
                s += &format!(",\"solution\":\"{}\"", escape_json(&solution.render()));
            }
            None => s += ",\"solution\":null",
        }
    }
    s.push('}');
    s
}

/// Response for a completed mutate: the solve response plus the repair
/// provenance — whether the solution was repaired from the stream's prior
/// (vs freshly solved to prime it), how many edits this request applied,
/// the stream's cumulative edit count, and how many cached decompositions
/// of the base were patched across the edit.
pub fn mutate_response_json(
    id: &str,
    record: &JobRecord,
    queue_ms: f64,
    want_solution: bool,
    repaired: bool,
    edits_applied: u64,
    edits_total: u64,
    decomps_patched: u64,
) -> String {
    let mut s = solve_response_json(id, record, queue_ms, want_solution);
    s.pop(); // strip the closing brace; the base form is a JSON object
    s += &format!(
        ",\"op\":\"mutate\",\"repaired\":{repaired},\"edits_applied\":{edits_applied},\
         \"edits_total\":{edits_total},\"decomps_patched\":{decomps_patched}}}"
    );
    s
}

/// A typed failure: `status: error` plus a machine-readable `code`
/// (`bad_request`, `failed`, `shutting_down`).
pub fn error_response_json(id: &str, code: &str, detail: &str) -> String {
    format!(
        "{{{}\"status\":\"error\",\"code\":\"{}\",\"detail\":\"{}\"}}",
        id_prefix(id),
        escape_json(code),
        escape_json(detail)
    )
}

/// Admission-control rejection: the bounded queue is full.
pub fn overloaded_response_json(id: &str, queue_depth: usize, queue_cap: usize) -> String {
    format!(
        "{{{}\"status\":\"overloaded\",\"detail\":\"queue full ({queue_depth}/{queue_cap})\"}}",
        id_prefix(id)
    )
}

/// Queued-too-long / abandoned-at-deadline rejection.
pub fn timeout_response_json(id: &str, detail: &str) -> String {
    format!(
        "{{{}\"status\":\"timeout\",\"detail\":\"{}\"}}",
        id_prefix(id),
        escape_json(detail)
    )
}

/// Cancellation acknowledgement for a request that never ran.
pub fn cancelled_response_json(id: &str, detail: &str) -> String {
    format!(
        "{{{}\"status\":\"cancelled\",\"detail\":\"{}\"}}",
        id_prefix(id),
        escape_json(detail)
    )
}

/// Plain `ok` acknowledgement for control ops (`ping`, `shutdown`).
pub fn ack_response_json(op: &str) -> String {
    format!("{{\"status\":\"ok\",\"op\":\"{}\"}}", escape_json(op))
}

/// Acknowledgement for a `cancel` op: whether the id was found in flight.
pub fn cancel_ack_json(id: &str, found: bool) -> String {
    format!(
        "{{\"status\":\"ok\",\"op\":\"cancel\",\"id\":\"{}\",\"found\":{found}}}",
        escape_json(id)
    )
}

/// One parsed response line, with typed accessors over the raw document.
#[derive(Debug, Clone)]
pub struct Reply {
    /// The parsed response document.
    pub raw: JsonValue,
}

impl Reply {
    /// Parse one response line.
    pub fn parse(line: &str) -> Result<Reply, String> {
        let raw = parse_json_value(line).map_err(|e| format!("invalid response JSON: {e}"))?;
        if raw.as_obj().is_none() {
            return Err("response must be a JSON object".into());
        }
        Ok(Reply { raw })
    }

    /// The `status` field ("" when absent).
    pub fn status(&self) -> &str {
        self.raw
            .get("status")
            .and_then(|v| v.as_str())
            .unwrap_or("")
    }

    /// The echoed request id ("" when absent).
    pub fn id(&self) -> &str {
        self.raw.get("id").and_then(|v| v.as_str()).unwrap_or("")
    }

    /// A string field.
    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.raw.get(key).and_then(|v| v.as_str())
    }

    /// A numeric field.
    pub fn num_field(&self, key: &str) -> Option<f64> {
        self.raw.get(key).and_then(|v| v.as_f64())
    }

    /// A boolean field.
    pub fn bool_field(&self, key: &str) -> Option<bool> {
        match self.raw.get(key) {
            Some(JsonValue::Bool(b)) => Some(*b),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Solver;
    use sb_core::matching::MmAlgorithm;

    #[test]
    fn solve_roundtrips_through_json() {
        let mut p = SolveParams::new("gen:lp1", "mm", "rand:4");
        p.id = "r7".into();
        p.tenant = "team-a".into();
        p.scale = 0.25;
        p.graph_seed = Some(9);
        p.seed = 3;
        p.threads = Some(2);
        p.deadline_ms = Some(1500);
        p.want_solution = true;
        let parsed = parse_request(&p.to_json()).unwrap();
        assert_eq!(parsed, Request::Solve(Box::new(p.clone())));
        let job = p.to_job_spec().unwrap();
        assert_eq!(job.solver, Solver::Mm(MmAlgorithm::Rand { partitions: 4 }));
        assert_eq!(job.label, "r7");
        assert_eq!(job.scale, 0.25);
        assert_eq!(job.graph_seed, Some(9));
        assert_eq!(job.threads, Some(2));
        assert_eq!(job.timeout_ms, None, "deadline is applied at dequeue");
    }

    #[test]
    fn mutate_roundtrips_through_json() {
        let mut m = MutateParams::new("inline:6:0-1,1-2,2-3", "mis", "degk:2", "+0-4,-1-2,v:8");
        m.solve.id = "m1".into();
        m.solve.tenant = "team-b".into();
        m.solve.seed = 5;
        let parsed = parse_request(&m.to_json()).unwrap();
        assert_eq!(parsed, Request::Mutate(Box::new(m.clone())));
        let log = m.edit_log().unwrap();
        assert_eq!(log.len(), 3);
        assert_eq!(log.wire(), "+0-4,-1-2,v:8");
        // An empty batch is legal (stream priming).
        let prime = MutateParams::new("gen:lp1", "mm", "baseline", "");
        assert!(parse_request(&prime.to_json()).is_ok());
        assert!(prime.edit_log().unwrap().is_empty());
    }

    #[test]
    fn mutate_rejects_bad_requests() {
        let cases = [
            (
                r#"{"op":"mutate","graph":"gen:lp1","problem":"mm","algo":"bicc"}"#,
                "missing 'edits'",
            ),
            (
                r#"{"op":"mutate","graph":"gen:lp1","problem":"mm","algo":"bicc","edits":"+1"}"#,
                "bad 'edits'",
            ),
            (
                r#"{"op":"mutate","graph":"gen:lp1","problem":"mm","algo":"bicc","edits":"+0-4294967295"}"#,
                "bad 'edits'",
            ),
            (
                r#"{"op":"mutate","problem":"mm","algo":"bicc","edits":""}"#,
                "mutate is missing 'graph'",
            ),
            (
                r#"{"op":"mutate","graph":"gen:lp1","problem":"mm","algo":"bicc","edits":"","bogus":1}"#,
                "unknown key 'bogus' for op mutate",
            ),
            (
                r#"{"op":"solve","graph":"gen:lp1","problem":"mm","algo":"bicc","edits":"+0-1"}"#,
                "unknown key 'edits' for op solve",
            ),
        ];
        for (line, needle) in cases {
            let err = parse_request(line).unwrap_err();
            assert!(err.contains(needle), "{line} → {err}");
        }
    }

    #[test]
    fn mutate_response_extends_solve_response() {
        let record = JobRecord {
            label: "m1".into(),
            graph: "gen:lp1@0.05#42".into(),
            config: "mis-degk:2@cpu/compact".into(),
            seed: 5,
            outcome: JobOutcome::Ok,
            detail: "MIS of 4 vertices".into(),
            graph_cached: true,
            decomp_cached: None,
            decompose_ms: 0.0,
            solve_ms: 0.08,
            wall_ms: 0.2,
            fresh_wall_ms: None,
            solution: None,
        };
        let line = mutate_response_json("m1", &record, 0.1, false, true, 3, 7, 2);
        let reply = Reply::parse(&line).unwrap();
        assert_eq!(reply.status(), "ok");
        assert_eq!(reply.str_field("op"), Some("mutate"));
        assert_eq!(reply.bool_field("repaired"), Some(true));
        assert_eq!(reply.num_field("edits_applied"), Some(3.0));
        assert_eq!(reply.num_field("edits_total"), Some(7.0));
        assert_eq!(reply.num_field("decomps_patched"), Some(2.0));
        assert_eq!(reply.num_field("queue_ms"), Some(0.1));
    }

    #[test]
    fn control_ops_parse() {
        assert_eq!(parse_request(r#"{"op":"ping"}"#).unwrap(), Request::Ping);
        assert_eq!(parse_request(r#"{"op":"stats"}"#).unwrap(), Request::Stats);
        assert_eq!(
            parse_request(r#"{"op":"shutdown"}"#).unwrap(),
            Request::Shutdown
        );
        assert_eq!(
            parse_request(r#"{"op":"cancel","id":"r1"}"#).unwrap(),
            Request::Cancel { id: "r1".into() }
        );
    }

    #[test]
    fn malformed_requests_get_typed_details() {
        let cases = [
            ("not json at all", "invalid JSON"),
            ("[1,2]", "must be a JSON object"),
            (r#"{"graph":"gen:lp1"}"#, "missing 'op'"),
            (r#"{"op":"quux"}"#, "unknown op 'quux'"),
            (
                r#"{"op":"solve","problem":"mm","algo":"bicc"}"#,
                "missing 'graph'",
            ),
            (
                r#"{"op":"solve","graph":"gen:lp1","problem":"mm","algo":"bicc","bogus":1}"#,
                "unknown key 'bogus'",
            ),
            (
                r#"{"op":"solve","graph":"gen:lp1","problem":"mm","algo":"bicc","seed":"x"}"#,
                "'seed' must be a non-negative integer",
            ),
            (
                r#"{"op":"solve","graph":"gen:lp1","problem":"mm","algo":"bicc","seed":9610570636375330354}"#,
                "lose precision",
            ),
            (
                r#"{"op":"solve","graph":"gen:lp1","problem":"lp","algo":"bicc"}"#,
                "unknown problem",
            ),
            (
                r#"{"op":"solve","graph":"gen:lp1","problem":"mm","algo":"bicc","arch":"tpu"}"#,
                "unknown arch",
            ),
            (r#"{"op":"cancel"}"#, "missing 'id'"),
        ];
        for (line, needle) in cases {
            let err = parse_request(line).unwrap_err();
            assert!(err.contains(needle), "{line} → {err}");
        }
    }

    #[test]
    fn responses_parse_back_with_typed_fields() {
        let record = JobRecord {
            label: "r1".into(),
            graph: "gen:lp1@0.05#42".into(),
            config: "mm-rand:4@cpu/compact".into(),
            seed: 11,
            outcome: JobOutcome::Ok,
            detail: "matching of 3 edges".into(),
            graph_cached: true,
            decomp_cached: Some(true),
            decompose_ms: 0.0,
            solve_ms: 1.25,
            wall_ms: 1.5,
            fresh_wall_ms: None,
            solution: Some(crate::Solution::Mate(vec![1, 0, 3, 2])),
        };
        let reply = Reply::parse(&solve_response_json("r1", &record, 0.5, true)).unwrap();
        assert_eq!(reply.status(), "ok");
        assert_eq!(reply.id(), "r1");
        assert_eq!(reply.bool_field("graph_cached"), Some(true));
        assert_eq!(reply.bool_field("decomp_cached"), Some(true));
        assert_eq!(reply.num_field("queue_ms"), Some(0.5));
        assert_eq!(reply.str_field("solution"), Some("0 1\n2 3\n"));

        let reply = Reply::parse(&error_response_json("x", "bad_request", "nope")).unwrap();
        assert_eq!(reply.status(), "error");
        assert_eq!(reply.str_field("code"), Some("bad_request"));
        let reply = Reply::parse(&overloaded_response_json("", 8, 8)).unwrap();
        assert_eq!(reply.status(), "overloaded");
        assert_eq!(reply.id(), "");
        let reply = Reply::parse(&cancel_ack_json("r9", true)).unwrap();
        assert_eq!(reply.bool_field("found"), Some(true));
    }
}
