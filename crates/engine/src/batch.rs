//! Job scheduling: per-job watchdog, cache admission, batch driver.
//!
//! Each job runs on its own worker thread so the coordinator can enforce a
//! per-job timeout without cooperation from the solver. Cache admission is
//! coordinator-side and happens *only after* a job completes cleanly: a
//! timed-out or failed job inserts nothing, so a wedged solver can never
//! poison the caches for the jobs behind it. (The abandoned worker keeps
//! running detached until its solve returns; its results are discarded.)

use crate::cache::DEFAULT_TENANT;
use crate::engine::{
    compute_decomposition, graph_approx_bytes, run_solver, CachedDecomposition, DecompKey,
    DecompSpec, Engine, GraphSource, Solution,
};
use crate::fingerprint::fingerprint_graph;
use crate::jobs::JobSpec;
use crate::report::BatchReport;
use crate::session::CancelToken;
use sb_core::common::{RunStats, SolveOpts};
use sb_graph::csr::Graph;
use sb_par::counters::Stopwatch;
use sb_par::exec::with_threads;
use sb_trace::TraceSink;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

/// How a job ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobOutcome {
    /// Solved and verified.
    Ok,
    /// The watchdog fired before the worker finished.
    TimedOut,
    /// The job errored (load failure, solver panic, failed verification).
    Failed(String),
    /// The client cancelled the job before it finished.
    Cancelled,
}

impl JobOutcome {
    /// Fixed-vocabulary outcome cell for reports.
    pub fn label(&self) -> &'static str {
        match self {
            JobOutcome::Ok => "ok",
            JobOutcome::TimedOut => "timeout",
            JobOutcome::Failed(_) => "failed",
            JobOutcome::Cancelled => "cancelled",
        }
    }
}

/// Everything recorded about one job's run.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Job label from the jobs file.
    pub label: String,
    /// Graph-source cache key.
    pub graph: String,
    /// `solver@arch/frontier` summary.
    pub config: String,
    /// Solver seed.
    pub seed: u64,
    /// How the job ended.
    pub outcome: JobOutcome,
    /// Solution summary (Ok) or error text (Failed); empty on timeout.
    pub detail: String,
    /// Whether the parsed graph came from the cache.
    pub graph_cached: bool,
    /// Decomposition provenance: cached / computed / baseline (`None`).
    pub decomp_cached: Option<bool>,
    /// Measured decomposition time (0 on a cache hit).
    pub decompose_ms: f64,
    /// Solver time.
    pub solve_ms: f64,
    /// End-to-end wall clock for the job, ingestion included.
    pub wall_ms: f64,
    /// Wall clock of the matching job in the cache-disabled reference run
    /// (filled by [`run_batch_compare`]).
    pub fresh_wall_ms: Option<f64>,
    /// The solution itself (Ok jobs only) for byte-equality checks and
    /// `--out-dir` rendering.
    pub solution: Option<Solution>,
}

/// Batch-level options.
#[derive(Debug, Clone, Default)]
pub struct BatchOptions {
    /// When set, each job records a trace written to
    /// `<trace_dir>/<label>.jsonl`.
    pub trace_dir: Option<PathBuf>,
}

/// What a worker sends back on success.
pub(crate) struct WorkerDone {
    solution: Solution,
    stats: RunStats,
    verify: Result<(), String>,
    graph: Arc<Graph>,
    fingerprint: u64,
    loaded_graph: bool,
    decomp: Option<Arc<CachedDecomposition>>,
    computed_decomp: bool,
}

/// Cache-probe result for one job: what the engine already holds. Taken
/// under the engine lock (or `&mut Engine`), then released while the
/// worker computes.
pub(crate) struct JobProbe {
    cached_graph: Option<(Arc<Graph>, u64)>,
    cached_decomp: Option<Arc<CachedDecomposition>>,
    fingerprint_seed: u64,
}

/// How the coordinator may reach the engine: directly (`&mut Engine`, the
/// batch path) or through a shared lock ([`crate::session::SharedEngine`],
/// the serve path). The probe→compute→commit pipeline in
/// [`run_job_shared`] only touches the engine through this, so the serve
/// path holds the lock for microseconds around cache operations, never
/// across a solve.
pub(crate) trait EngineAccess {
    /// Run `f` with exclusive access to the engine.
    fn with_engine<R>(&mut self, f: impl FnOnce(&mut Engine) -> R) -> R;
}

impl EngineAccess for Engine {
    fn with_engine<R>(&mut self, f: impl FnOnce(&mut Engine) -> R) -> R {
        f(self)
    }
}

impl Engine {
    /// Probe both caches for `job`'s inputs, refreshing recency and
    /// hit/miss statistics. Cheap: two map lookups and two `Arc` clones.
    pub(crate) fn probe_job(&mut self, src_key: &String, spec: DecompSpec, seed: u64) -> JobProbe {
        let cached_graph = self.graphs.get(src_key).cloned();
        let cached_decomp = match &cached_graph {
            Some((_, fp)) if spec != DecompSpec::None => {
                self.decomps.get(&DecompKey::new(*fp, spec, seed)).cloned()
            }
            _ => None,
        };
        JobProbe {
            cached_graph,
            cached_decomp,
            fingerprint_seed: self.fingerprint_seed,
        }
    }

    /// Admit a cleanly-finished job's products into the caches, charged to
    /// `tenant`. Only called after verification succeeded — a timed-out,
    /// failed, or cancelled job never reaches this point.
    pub(crate) fn commit_job(
        &mut self,
        tenant: &str,
        src_key: &str,
        spec: DecompSpec,
        seed: u64,
        done: &WorkerDone,
    ) {
        if done.loaded_graph {
            let bytes = graph_approx_bytes(&done.graph);
            self.graphs.insert_weighted_for(
                tenant,
                src_key.to_string(),
                (done.graph.clone(), done.fingerprint),
                bytes,
            );
        }
        if done.computed_decomp {
            if let Some(d) = &done.decomp {
                let bytes = d.approx_bytes();
                self.decomps.insert_weighted_for(
                    tenant,
                    DecompKey::new(done.fingerprint, spec, seed),
                    d.clone(),
                    bytes,
                );
            }
        }
    }

    /// Run one job through the caches with a watchdog. Cache inserts happen
    /// in the coordinator, after a clean finish — never from the worker.
    pub fn run_job(&mut self, job: &JobSpec, trace: Option<Arc<TraceSink>>) -> JobRecord {
        run_job_shared(self, DEFAULT_TENANT, job, trace, None, None)
    }

    /// Run a batch of jobs in order through this engine's caches.
    pub fn run_batch(
        &mut self,
        jobs: &[JobSpec],
        opts: &BatchOptions,
    ) -> Result<BatchReport, String> {
        if let Some(dir) = &opts.trace_dir {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create trace dir {}: {e}", dir.display()))?;
        }
        let sw = Stopwatch::start();
        let mut records = Vec::with_capacity(jobs.len());
        for job in jobs {
            let sink = opts
                .trace_dir
                .as_ref()
                .map(|_| Arc::new(TraceSink::enabled()));
            let record = self.run_job(job, sink.clone());
            if let (Some(dir), Some(sink)) = (&opts.trace_dir, sink) {
                let path = dir.join(format!("{}.jsonl", job.label));
                sink.save_jsonl(&path)
                    .map_err(|e| format!("cannot write trace {}: {e}", path.display()))?;
            }
            records.push(record);
        }
        Ok(BatchReport {
            jobs: records,
            graph_cache: self.graphs.stats(),
            decomp_cache: self.decomps.stats(),
            total_wall_ms: sw.elapsed().as_secs_f64() * 1e3,
            fresh_total_wall_ms: None,
        })
    }
}

/// How [`wait_for_worker`] ended.
pub(crate) enum WaitVerdict {
    /// The worker reported (success or error) in time.
    Finished(Box<Result<WorkerDone, String>>),
    /// The watchdog budget elapsed first.
    TimedOut,
    /// The job's cancel token fired first.
    Cancelled,
    /// The worker vanished without reporting.
    Died,
}

/// Spawn the solve worker for one job. The worker loads/computes whatever
/// the probe missed, runs the solver, and self-verifies; it never touches
/// the caches.
pub(crate) fn spawn_worker(
    src: GraphSource,
    probe: JobProbe,
    spec: DecompSpec,
    job: JobSpec,
    opts: SolveOpts,
) -> mpsc::Receiver<Result<WorkerDone, String>> {
    let JobProbe {
        cached_graph,
        cached_decomp,
        fingerprint_seed,
    } = probe;
    let (tx, rx) = mpsc::channel::<Result<WorkerDone, String>>();
    thread::spawn(move || {
        let run = || -> Result<WorkerDone, String> {
            let (graph, fingerprint, loaded_graph) = match cached_graph {
                Some((g, fp)) => (g, fp, false),
                None => {
                    let g = Arc::new(src.load()?);
                    let fp = fingerprint_graph(&g, fingerprint_seed);
                    (g, fp, true)
                }
            };
            let work = || {
                let (decomp, computed_decomp, decompose_time) = if spec == DecompSpec::None {
                    (None, false, Duration::ZERO)
                } else {
                    match cached_decomp {
                        Some(d) => (Some(d), false, Duration::ZERO),
                        None => {
                            let (d, dt) =
                                compute_decomposition(&graph, spec, job.seed, opts.trace.clone());
                            (Some(Arc::new(d)), true, dt)
                        }
                    }
                };
                let (solution, mut stats) = run_solver(
                    &graph,
                    job.solver,
                    decomp.as_deref(),
                    job.arch,
                    job.seed,
                    &opts,
                );
                stats.decompose_time = decompose_time;
                (decomp, computed_decomp, solution, stats)
            };
            let (decomp, computed_decomp, solution, stats) = match job.threads {
                Some(t) => with_threads(t, work),
                None => work(),
            };
            let verify = solution.verify(&graph);
            Ok(WorkerDone {
                solution,
                stats,
                verify,
                graph,
                fingerprint,
                loaded_graph,
                decomp,
                computed_decomp,
            })
        };
        let result = catch_unwind(AssertUnwindSafe(run)).unwrap_or_else(|p| {
            let msg = p
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| p.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "unknown panic".into());
            Err(format!("solver panicked: {msg}"))
        });
        let _ = tx.send(result);
    });
    rx
}

/// Block until the worker reports, the watchdog budget elapses, or the
/// cancel token fires. With a cancel token the wait is sliced so a
/// cancellation is observed within ~10 ms; without one, a single blocking
/// receive (the original batch behavior).
pub(crate) fn wait_for_worker(
    rx: &mpsc::Receiver<Result<WorkerDone, String>>,
    timeout: Option<Duration>,
    cancel: Option<&CancelToken>,
) -> WaitVerdict {
    const SLICE: Duration = Duration::from_millis(10);
    let deadline = timeout.map(|t| Instant::now() + t);
    loop {
        if cancel.is_some_and(|c| c.is_cancelled()) {
            return WaitVerdict::Cancelled;
        }
        let wait = match deadline {
            Some(d) => {
                let remaining = d.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return WaitVerdict::TimedOut;
                }
                if cancel.is_some() {
                    remaining.min(SLICE)
                } else {
                    remaining
                }
            }
            None => {
                if cancel.is_none() {
                    return match rx.recv() {
                        Ok(r) => WaitVerdict::Finished(Box::new(r)),
                        Err(_) => WaitVerdict::Died,
                    };
                }
                SLICE
            }
        };
        match rx.recv_timeout(wait) {
            Ok(r) => return WaitVerdict::Finished(Box::new(r)),
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => return WaitVerdict::Died,
        }
    }
}

/// The probe→compute→commit job pipeline shared by [`Engine::run_job`]
/// (direct access, no cancellation) and the serve path (locked access,
/// deadline + cancel token). Cache state is only touched inside
/// `access.with_engine` closures.
pub(crate) fn run_job_shared<A: EngineAccess>(
    access: &mut A,
    tenant: &str,
    job: &JobSpec,
    trace: Option<Arc<TraceSink>>,
    cancel: Option<&CancelToken>,
    deadline: Option<Duration>,
) -> JobRecord {
    let sw = Stopwatch::start();
    let config = format!("{}@{}/{}", job.solver.label(), job.arch, job.frontier);
    let mut record = JobRecord {
        label: job.label.clone(),
        graph: job.graph.clone(),
        config,
        seed: job.seed,
        outcome: JobOutcome::Ok,
        detail: String::new(),
        graph_cached: false,
        decomp_cached: None,
        decompose_ms: 0.0,
        solve_ms: 0.0,
        wall_ms: 0.0,
        fresh_wall_ms: None,
        solution: None,
    };
    let finish = |mut record: JobRecord| {
        record.wall_ms = sw.elapsed().as_secs_f64() * 1e3;
        record
    };
    if cancel.is_some_and(|c| c.is_cancelled()) {
        record.outcome = JobOutcome::Cancelled;
        record.detail = "cancelled before start".into();
        return finish(record);
    }
    let src = match GraphSource::parse(&job.graph, job.scale, job.effective_graph_seed()) {
        Ok(src) => src,
        Err(e) => {
            record.outcome = JobOutcome::Failed(e.clone());
            record.detail = e;
            return finish(record);
        }
    };
    let src_key = src.key();
    record.graph = src_key.clone();
    let spec = job.solver.decomp_spec();
    let probe = access.with_engine(|e| e.probe_job(&src_key, spec, job.seed));
    record.graph_cached = probe.cached_graph.is_some();
    if spec != DecompSpec::None {
        record.decomp_cached = Some(probe.cached_decomp.is_some());
    }

    let opts = SolveOpts {
        trace,
        frontier: job.frontier,
    };
    // The effective watchdog budget: the tighter of the job's own timeout
    // and the caller's deadline (serve: time remaining on the request).
    let budget_ms = match (job.timeout_ms, deadline.map(|d| d.as_millis() as u64)) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    };
    let rx = spawn_worker(src, probe, spec, job.clone(), opts);
    match wait_for_worker(&rx, budget_ms.map(Duration::from_millis), cancel) {
        WaitVerdict::Finished(done) => match *done {
            Ok(done) => {
                record.decompose_ms = done.stats.decompose_time.as_secs_f64() * 1e3;
                record.solve_ms = done.stats.solve_time.as_secs_f64() * 1e3;
                match &done.verify {
                    Ok(()) => {
                        // Clean finish: only now may the caches learn
                        // anything from this job.
                        access
                            .with_engine(|e| e.commit_job(tenant, &src_key, spec, job.seed, &done));
                        record.detail = done.solution.summary();
                        record.solution = Some(done.solution);
                    }
                    Err(e) => {
                        let msg = format!("verification failed: {e}");
                        record.outcome = JobOutcome::Failed(msg.clone());
                        record.detail = msg;
                    }
                }
            }
            Err(e) => {
                record.outcome = JobOutcome::Failed(e.clone());
                record.detail = e;
            }
        },
        WaitVerdict::TimedOut => {
            record.outcome = JobOutcome::TimedOut;
            record.detail = format!("exceeded {} ms", budget_ms.unwrap_or(0));
        }
        WaitVerdict::Cancelled => {
            record.outcome = JobOutcome::Cancelled;
            record.detail = "cancelled".into();
        }
        WaitVerdict::Died => {
            let msg = "worker thread died without reporting".to_string();
            record.outcome = JobOutcome::Failed(msg.clone());
            record.detail = msg;
        }
    }
    finish(record)
}

/// Run `jobs` twice — once through a caching engine with `cfg`, once
/// through a cache-disabled engine — assert the outputs are identical, and
/// return the cached run's report annotated with the fresh wall clocks.
/// Any Ok/Ok solution divergence is a hard error (the stale-cache oracle).
pub fn run_batch_compare(
    jobs: &[JobSpec],
    cfg: crate::engine::EngineConfig,
    opts: &BatchOptions,
) -> Result<BatchReport, String> {
    let mut cached_engine = Engine::new(cfg);
    let mut report = cached_engine.run_batch(jobs, opts)?;
    let mut fresh_engine = Engine::new(crate::engine::EngineConfig {
        cache_cap: 0,
        ..cfg
    });
    let fresh = fresh_engine.run_batch(jobs, &BatchOptions::default())?;
    for (cached, fresh) in report.jobs.iter_mut().zip(&fresh.jobs) {
        cached.fresh_wall_ms = Some(fresh.wall_ms);
        if cached.outcome == JobOutcome::Ok
            && fresh.outcome == JobOutcome::Ok
            && cached.solution != fresh.solution
        {
            return Err(format!(
                "job '{}': cached and fresh outputs diverge — stale cache entry",
                cached.label
            ));
        }
        if cached.outcome.label() != fresh.outcome.label() {
            return Err(format!(
                "job '{}': cached run {} but fresh run {}",
                cached.label,
                cached.outcome.label(),
                fresh.outcome.label()
            ));
        }
    }
    report.fresh_total_wall_ms = Some(fresh.total_wall_ms);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::jobs::parse_jobs;

    const BATCH: &str = r#"
[defaults]
graph = "gen:lp1"
scale = 0.05
seed = 11
graph_seed = 42

[[job]]
label = "mm"
problem = "mm"
algo = "rand:4"

[[job]]
label = "color"
problem = "color"
algo = "degk"

[[job]]
label = "mis"
problem = "mis"
algo = "degk"
"#;

    #[test]
    fn batch_amortizes_graph_and_decomposition() {
        let jobs = parse_jobs(BATCH, "t").unwrap();
        let mut engine = Engine::with_cap(8);
        let report = engine.run_batch(&jobs, &BatchOptions::default()).unwrap();
        assert!(report.all_ok(), "{:?}", report.jobs);
        // Job 1 loads the graph; jobs 2 and 3 reuse it.
        assert!(!report.jobs[0].graph_cached);
        assert!(report.jobs[1].graph_cached);
        assert!(report.jobs[2].graph_cached);
        // color and mis share the DEG2 decomposition.
        assert_eq!(report.jobs[1].decomp_cached, Some(false));
        assert_eq!(report.jobs[2].decomp_cached, Some(true));
        assert_eq!(report.jobs[2].decompose_ms, 0.0);
    }

    #[test]
    fn compare_matches_and_fills_fresh_times() {
        let jobs = parse_jobs(BATCH, "t").unwrap();
        let report =
            run_batch_compare(&jobs, EngineConfig::default(), &BatchOptions::default()).unwrap();
        assert!(report.all_ok());
        for job in &report.jobs {
            assert!(job.fresh_wall_ms.is_some());
        }
        assert!(report.fresh_total_wall_ms.is_some());
    }

    #[test]
    fn timeout_reports_and_does_not_poison_cache() {
        let mut jobs = parse_jobs(BATCH, "t").unwrap();
        jobs.truncate(1);
        jobs[0].timeout_ms = Some(0); // fires before any worker can finish
        let mut engine = Engine::with_cap(8);
        let report = engine.run_batch(&jobs, &BatchOptions::default()).unwrap();
        assert_eq!(report.jobs[0].outcome, JobOutcome::TimedOut);
        assert!(report.jobs[0].solution.is_none());
        assert_eq!(
            engine.graph_cache_stats().inserts,
            0,
            "a timed-out job must not insert into the graph cache"
        );
        assert_eq!(engine.decomp_cache_stats().inserts, 0);
        // The same job without the watchdog then runs fine.
        jobs[0].timeout_ms = None;
        let report = engine.run_batch(&jobs, &BatchOptions::default()).unwrap();
        assert_eq!(report.jobs[0].outcome, JobOutcome::Ok);
    }

    #[test]
    fn bad_graph_source_fails_the_job_not_the_batch() {
        let text = "[[job]]\ngraph = \"gen:nope\"\nproblem = \"mm\"\nalgo = \"bicc\"\n\
                    [[job]]\ngraph = \"gen:lp1\"\nscale = 0.05\nproblem = \"mm\"\nalgo = \"bicc\"\n";
        let jobs = parse_jobs(text, "t").unwrap();
        let mut engine = Engine::with_cap(8);
        let report = engine.run_batch(&jobs, &BatchOptions::default()).unwrap();
        assert!(matches!(report.jobs[0].outcome, JobOutcome::Failed(_)));
        assert!(report.jobs[0].detail.contains("unknown graph"));
        assert_eq!(report.jobs[1].outcome, JobOutcome::Ok);
    }

    #[test]
    fn traces_written_per_job() {
        let dir = std::env::temp_dir().join("sb-engine-test-traces");
        std::fs::remove_dir_all(&dir).ok();
        let jobs = parse_jobs(BATCH, "t").unwrap();
        let mut engine = Engine::with_cap(8);
        let opts = BatchOptions {
            trace_dir: Some(dir.clone()),
        };
        engine.run_batch(&jobs, &opts).unwrap();
        for label in ["mm", "color", "mis"] {
            let path = dir.join(format!("{label}.jsonl"));
            let text = std::fs::read_to_string(&path).unwrap();
            assert!(!text.is_empty(), "empty trace for {label}");
        }
        // The cached decomposition must NOT re-emit a decompose span.
        let mis = std::fs::read_to_string(dir.join("mis.jsonl")).unwrap();
        assert!(
            !mis.contains("\"decompose\""),
            "cache-hit job should not record a decompose phase"
        );
        let color = std::fs::read_to_string(dir.join("color.jsonl")).unwrap();
        assert!(
            color.contains("decompose"),
            "cache-miss job records decompose"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
