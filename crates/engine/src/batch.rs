//! Job scheduling: per-job watchdog, cache admission, batch driver.
//!
//! Each job runs on its own worker thread so the coordinator can enforce a
//! per-job timeout without cooperation from the solver. Cache admission is
//! coordinator-side and happens *only after* a job completes cleanly: a
//! timed-out or failed job inserts nothing, so a wedged solver can never
//! poison the caches for the jobs behind it. (The abandoned worker keeps
//! running detached until its solve returns; its results are discarded.)

use crate::engine::{
    compute_decomposition, graph_approx_bytes, run_solver, CachedDecomposition, DecompKey,
    DecompSpec, Engine, GraphSource, Solution,
};
use crate::fingerprint::fingerprint_graph;
use crate::jobs::JobSpec;
use crate::report::BatchReport;
use sb_core::common::{RunStats, SolveOpts};
use sb_graph::csr::Graph;
use sb_par::counters::Stopwatch;
use sb_par::exec::with_threads;
use sb_trace::TraceSink;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Duration;

/// How a job ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobOutcome {
    /// Solved and verified.
    Ok,
    /// The watchdog fired before the worker finished.
    TimedOut,
    /// The job errored (load failure, solver panic, failed verification).
    Failed(String),
}

impl JobOutcome {
    /// Fixed-vocabulary outcome cell for reports.
    pub fn label(&self) -> &'static str {
        match self {
            JobOutcome::Ok => "ok",
            JobOutcome::TimedOut => "timeout",
            JobOutcome::Failed(_) => "failed",
        }
    }
}

/// Everything recorded about one job's run.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Job label from the jobs file.
    pub label: String,
    /// Graph-source cache key.
    pub graph: String,
    /// `solver@arch/frontier` summary.
    pub config: String,
    /// Solver seed.
    pub seed: u64,
    /// How the job ended.
    pub outcome: JobOutcome,
    /// Solution summary (Ok) or error text (Failed); empty on timeout.
    pub detail: String,
    /// Whether the parsed graph came from the cache.
    pub graph_cached: bool,
    /// Decomposition provenance: cached / computed / baseline (`None`).
    pub decomp_cached: Option<bool>,
    /// Measured decomposition time (0 on a cache hit).
    pub decompose_ms: f64,
    /// Solver time.
    pub solve_ms: f64,
    /// End-to-end wall clock for the job, ingestion included.
    pub wall_ms: f64,
    /// Wall clock of the matching job in the cache-disabled reference run
    /// (filled by [`run_batch_compare`]).
    pub fresh_wall_ms: Option<f64>,
    /// The solution itself (Ok jobs only) for byte-equality checks and
    /// `--out-dir` rendering.
    pub solution: Option<Solution>,
}

/// Batch-level options.
#[derive(Debug, Clone, Default)]
pub struct BatchOptions {
    /// When set, each job records a trace written to
    /// `<trace_dir>/<label>.jsonl`.
    pub trace_dir: Option<PathBuf>,
}

/// What a worker sends back on success.
struct WorkerDone {
    solution: Solution,
    stats: RunStats,
    verify: Result<(), String>,
    graph: Arc<Graph>,
    fingerprint: u64,
    loaded_graph: bool,
    decomp: Option<Arc<CachedDecomposition>>,
    computed_decomp: bool,
}

impl Engine {
    /// Run one job through the caches with a watchdog. Cache inserts happen
    /// here, after a clean finish — never from the worker.
    pub fn run_job(&mut self, job: &JobSpec, trace: Option<Arc<TraceSink>>) -> JobRecord {
        let sw = Stopwatch::start();
        let config = format!("{}@{}/{}", job.solver.label(), job.arch, job.frontier);
        let mut record = JobRecord {
            label: job.label.clone(),
            graph: job.graph.clone(),
            config,
            seed: job.seed,
            outcome: JobOutcome::Ok,
            detail: String::new(),
            graph_cached: false,
            decomp_cached: None,
            decompose_ms: 0.0,
            solve_ms: 0.0,
            wall_ms: 0.0,
            fresh_wall_ms: None,
            solution: None,
        };
        let src = match GraphSource::parse(&job.graph, job.scale, job.effective_graph_seed()) {
            Ok(src) => src,
            Err(e) => {
                record.outcome = JobOutcome::Failed(e.clone());
                record.detail = e;
                record.wall_ms = sw.elapsed().as_secs_f64() * 1e3;
                return record;
            }
        };
        let src_key = src.key();
        record.graph = src_key.clone();

        let cached_graph = self.graphs.get(&src_key).cloned();
        record.graph_cached = cached_graph.is_some();
        let spec = job.solver.decomp_spec();
        let cached_decomp = match &cached_graph {
            Some((_, fp)) if spec != DecompSpec::None => self
                .decomps
                .get(&DecompKey::new(*fp, spec, job.seed))
                .cloned(),
            _ => None,
        };
        if spec != DecompSpec::None {
            record.decomp_cached = Some(cached_decomp.is_some());
        }

        let opts = SolveOpts {
            trace,
            frontier: job.frontier,
        };
        let fingerprint_seed = self.fingerprint_seed;
        let worker_job = job.clone();
        let (tx, rx) = mpsc::channel::<Result<WorkerDone, String>>();
        thread::spawn(move || {
            let job = worker_job;
            let run = || -> Result<WorkerDone, String> {
                let (graph, fingerprint, loaded_graph) = match cached_graph {
                    Some((g, fp)) => (g, fp, false),
                    None => {
                        let g = Arc::new(src.load()?);
                        let fp = fingerprint_graph(&g, fingerprint_seed);
                        (g, fp, true)
                    }
                };
                let work = || {
                    let (decomp, computed_decomp, decompose_time) = if spec == DecompSpec::None {
                        (None, false, Duration::ZERO)
                    } else {
                        match cached_decomp {
                            Some(d) => (Some(d), false, Duration::ZERO),
                            None => {
                                let (d, dt) = compute_decomposition(
                                    &graph,
                                    spec,
                                    job.seed,
                                    opts.trace.clone(),
                                );
                                (Some(Arc::new(d)), true, dt)
                            }
                        }
                    };
                    let (solution, mut stats) = run_solver(
                        &graph,
                        job.solver,
                        decomp.as_deref(),
                        job.arch,
                        job.seed,
                        &opts,
                    );
                    stats.decompose_time = decompose_time;
                    (decomp, computed_decomp, solution, stats)
                };
                let (decomp, computed_decomp, solution, stats) = match job.threads {
                    Some(t) => with_threads(t, work),
                    None => work(),
                };
                let verify = solution.verify(&graph);
                Ok(WorkerDone {
                    solution,
                    stats,
                    verify,
                    graph,
                    fingerprint,
                    loaded_graph,
                    decomp,
                    computed_decomp,
                })
            };
            let result = catch_unwind(AssertUnwindSafe(run)).unwrap_or_else(|p| {
                let msg = p
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| p.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "unknown panic".into());
                Err(format!("solver panicked: {msg}"))
            });
            let _ = tx.send(result);
        });

        let received = match job.timeout_ms {
            Some(ms) => rx.recv_timeout(Duration::from_millis(ms)),
            None => rx.recv().map_err(|_| mpsc::RecvTimeoutError::Disconnected),
        };
        match received {
            Ok(Ok(done)) => {
                record.decompose_ms = done.stats.decompose_time.as_secs_f64() * 1e3;
                record.solve_ms = done.stats.solve_time.as_secs_f64() * 1e3;
                match done.verify {
                    Ok(()) => {
                        // Clean finish: only now may the caches learn
                        // anything from this job.
                        if done.loaded_graph {
                            let bytes = graph_approx_bytes(&done.graph);
                            self.graphs.insert_weighted(
                                src_key.clone(),
                                (done.graph, done.fingerprint),
                                bytes,
                            );
                        }
                        if done.computed_decomp {
                            if let Some(d) = done.decomp {
                                let bytes = d.approx_bytes();
                                self.decomps.insert_weighted(
                                    DecompKey::new(done.fingerprint, spec, job.seed),
                                    d,
                                    bytes,
                                );
                            }
                        }
                        record.detail = done.solution.summary();
                        record.solution = Some(done.solution);
                    }
                    Err(e) => {
                        let msg = format!("verification failed: {e}");
                        record.outcome = JobOutcome::Failed(msg.clone());
                        record.detail = msg;
                    }
                }
            }
            Ok(Err(e)) => {
                record.outcome = JobOutcome::Failed(e.clone());
                record.detail = e;
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                record.outcome = JobOutcome::TimedOut;
                record.detail = format!("exceeded {} ms", job.timeout_ms.unwrap_or(0));
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                let msg = "worker thread died without reporting".to_string();
                record.outcome = JobOutcome::Failed(msg.clone());
                record.detail = msg;
            }
        }
        record.wall_ms = sw.elapsed().as_secs_f64() * 1e3;
        record
    }

    /// Run a batch of jobs in order through this engine's caches.
    pub fn run_batch(
        &mut self,
        jobs: &[JobSpec],
        opts: &BatchOptions,
    ) -> Result<BatchReport, String> {
        if let Some(dir) = &opts.trace_dir {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create trace dir {}: {e}", dir.display()))?;
        }
        let sw = Stopwatch::start();
        let mut records = Vec::with_capacity(jobs.len());
        for job in jobs {
            let sink = opts
                .trace_dir
                .as_ref()
                .map(|_| Arc::new(TraceSink::enabled()));
            let record = self.run_job(job, sink.clone());
            if let (Some(dir), Some(sink)) = (&opts.trace_dir, sink) {
                let path = dir.join(format!("{}.jsonl", job.label));
                sink.save_jsonl(&path)
                    .map_err(|e| format!("cannot write trace {}: {e}", path.display()))?;
            }
            records.push(record);
        }
        Ok(BatchReport {
            jobs: records,
            graph_cache: self.graphs.stats(),
            decomp_cache: self.decomps.stats(),
            total_wall_ms: sw.elapsed().as_secs_f64() * 1e3,
            fresh_total_wall_ms: None,
        })
    }
}

/// Run `jobs` twice — once through a caching engine with `cfg`, once
/// through a cache-disabled engine — assert the outputs are identical, and
/// return the cached run's report annotated with the fresh wall clocks.
/// Any Ok/Ok solution divergence is a hard error (the stale-cache oracle).
pub fn run_batch_compare(
    jobs: &[JobSpec],
    cfg: crate::engine::EngineConfig,
    opts: &BatchOptions,
) -> Result<BatchReport, String> {
    let mut cached_engine = Engine::new(cfg);
    let mut report = cached_engine.run_batch(jobs, opts)?;
    let mut fresh_engine = Engine::new(crate::engine::EngineConfig {
        cache_cap: 0,
        ..cfg
    });
    let fresh = fresh_engine.run_batch(jobs, &BatchOptions::default())?;
    for (cached, fresh) in report.jobs.iter_mut().zip(&fresh.jobs) {
        cached.fresh_wall_ms = Some(fresh.wall_ms);
        if cached.outcome == JobOutcome::Ok
            && fresh.outcome == JobOutcome::Ok
            && cached.solution != fresh.solution
        {
            return Err(format!(
                "job '{}': cached and fresh outputs diverge — stale cache entry",
                cached.label
            ));
        }
        if cached.outcome.label() != fresh.outcome.label() {
            return Err(format!(
                "job '{}': cached run {} but fresh run {}",
                cached.label,
                cached.outcome.label(),
                fresh.outcome.label()
            ));
        }
    }
    report.fresh_total_wall_ms = Some(fresh.total_wall_ms);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::jobs::parse_jobs;

    const BATCH: &str = r#"
[defaults]
graph = "gen:lp1"
scale = 0.05
seed = 11
graph_seed = 42

[[job]]
label = "mm"
problem = "mm"
algo = "rand:4"

[[job]]
label = "color"
problem = "color"
algo = "degk"

[[job]]
label = "mis"
problem = "mis"
algo = "degk"
"#;

    #[test]
    fn batch_amortizes_graph_and_decomposition() {
        let jobs = parse_jobs(BATCH, "t").unwrap();
        let mut engine = Engine::with_cap(8);
        let report = engine.run_batch(&jobs, &BatchOptions::default()).unwrap();
        assert!(report.all_ok(), "{:?}", report.jobs);
        // Job 1 loads the graph; jobs 2 and 3 reuse it.
        assert!(!report.jobs[0].graph_cached);
        assert!(report.jobs[1].graph_cached);
        assert!(report.jobs[2].graph_cached);
        // color and mis share the DEG2 decomposition.
        assert_eq!(report.jobs[1].decomp_cached, Some(false));
        assert_eq!(report.jobs[2].decomp_cached, Some(true));
        assert_eq!(report.jobs[2].decompose_ms, 0.0);
    }

    #[test]
    fn compare_matches_and_fills_fresh_times() {
        let jobs = parse_jobs(BATCH, "t").unwrap();
        let report =
            run_batch_compare(&jobs, EngineConfig::default(), &BatchOptions::default()).unwrap();
        assert!(report.all_ok());
        for job in &report.jobs {
            assert!(job.fresh_wall_ms.is_some());
        }
        assert!(report.fresh_total_wall_ms.is_some());
    }

    #[test]
    fn timeout_reports_and_does_not_poison_cache() {
        let mut jobs = parse_jobs(BATCH, "t").unwrap();
        jobs.truncate(1);
        jobs[0].timeout_ms = Some(0); // fires before any worker can finish
        let mut engine = Engine::with_cap(8);
        let report = engine.run_batch(&jobs, &BatchOptions::default()).unwrap();
        assert_eq!(report.jobs[0].outcome, JobOutcome::TimedOut);
        assert!(report.jobs[0].solution.is_none());
        assert_eq!(
            engine.graph_cache_stats().inserts,
            0,
            "a timed-out job must not insert into the graph cache"
        );
        assert_eq!(engine.decomp_cache_stats().inserts, 0);
        // The same job without the watchdog then runs fine.
        jobs[0].timeout_ms = None;
        let report = engine.run_batch(&jobs, &BatchOptions::default()).unwrap();
        assert_eq!(report.jobs[0].outcome, JobOutcome::Ok);
    }

    #[test]
    fn bad_graph_source_fails_the_job_not_the_batch() {
        let text = "[[job]]\ngraph = \"gen:nope\"\nproblem = \"mm\"\nalgo = \"bicc\"\n\
                    [[job]]\ngraph = \"gen:lp1\"\nscale = 0.05\nproblem = \"mm\"\nalgo = \"bicc\"\n";
        let jobs = parse_jobs(text, "t").unwrap();
        let mut engine = Engine::with_cap(8);
        let report = engine.run_batch(&jobs, &BatchOptions::default()).unwrap();
        assert!(matches!(report.jobs[0].outcome, JobOutcome::Failed(_)));
        assert!(report.jobs[0].detail.contains("unknown graph"));
        assert_eq!(report.jobs[1].outcome, JobOutcome::Ok);
    }

    #[test]
    fn traces_written_per_job() {
        let dir = std::env::temp_dir().join("sb-engine-test-traces");
        std::fs::remove_dir_all(&dir).ok();
        let jobs = parse_jobs(BATCH, "t").unwrap();
        let mut engine = Engine::with_cap(8);
        let opts = BatchOptions {
            trace_dir: Some(dir.clone()),
        };
        engine.run_batch(&jobs, &opts).unwrap();
        for label in ["mm", "color", "mis"] {
            let path = dir.join(format!("{label}.jsonl"));
            let text = std::fs::read_to_string(&path).unwrap();
            assert!(!text.is_empty(), "empty trace for {label}");
        }
        // The cached decomposition must NOT re-emit a decompose span.
        let mis = std::fs::read_to_string(dir.join("mis.jsonl")).unwrap();
        assert!(
            !mis.contains("\"decompose\""),
            "cache-hit job should not record a decompose phase"
        );
        let color = std::fs::read_to_string(dir.join("color.jsonl")).unwrap();
        assert!(
            color.contains("decompose"),
            "cache-miss job records decompose"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
