//! Process-wide runtime metrics: a lock-cheap registry of named counters,
//! gauges, and log2-bucketed histograms (see DESIGN.md §12).
//!
//! The trace layer (`sb-trace`) answers *algorithmic* questions — rounds,
//! settled counts, per-phase work — for one run with a sink threaded
//! through it. This crate answers *operational* questions — cache hit
//! rates, worker-pool utilization, arena reuse, phase latency percentiles —
//! for the whole process, with no plumbing: instrumented code grabs a
//! handle from the [`global`] registry once and bumps an atomic thereafter.
//!
//! Design rules:
//!
//! * **Registration locks, increments don't.** The registry is a mutexed
//!   `BTreeMap` touched only when a series is first created and when a
//!   snapshot is taken. Handles are `Arc`-shared atomics; `inc`/`add`/
//!   `observe` are relaxed atomic ops.
//! * **Names are `sb_<crate>_<name>`** (Prometheus-style), with optional
//!   `{label="value"}` dimensions. The `BTreeMap` keying makes every
//!   snapshot deterministically ordered.
//! * **Every series declares a [`Class`].** `Logical` series count events
//!   fixed by the algorithm (cache hits, arena reuses, compaction items):
//!   they must be identical at 1 and N threads, and the CLI's determinism
//!   test pins exactly that. `Runtime` series (durations, pieces claimed,
//!   idle time) legitimately vary with parallelism and are excluded from
//!   that comparison.
//!
//! Histograms reuse the `settled_bucket` idiom from
//! `sb_trace::summary`: bucket 0 counts zero observations, bucket `i`
//! counts values in `[2^(i-1), 2^i)`, clamped to the last bucket.

mod json;
mod snapshot;

pub use json::{escape as escape_json, parse as parse_json_value, JsonValue};
pub use snapshot::{HistogramSnapshot, Series, SeriesValue, Snapshot};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of log2 buckets in a [`Histogram`]. Bucket 0 counts zero-valued
/// observations; bucket `i` counts values in `[2^(i-1), 2^i)`; the last
/// bucket absorbs everything from `2^(BUCKETS-2)` up. 32 buckets cover the
/// microsecond durations and byte counts the runtime records (up to ~2^30)
/// without saturating.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// Bucket index for an observation: 0 for zero, else `floor(log2(v)) + 1`,
/// clamped to the last bucket — the same law as the trace layer's
/// settled-per-round histogram.
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `i` (`None` for the open last bucket),
/// used for Prometheus `le` labels.
pub fn bucket_upper_bound(i: usize) -> Option<u64> {
    if i == 0 {
        Some(0)
    } else if i >= HISTOGRAM_BUCKETS - 1 {
        None
    } else {
        Some((1u64 << i) - 1)
    }
}

/// Whether a series is invariant under thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Class {
    /// Determined by the algorithm alone: identical at 1 and N threads.
    Logical,
    /// Scheduling- or wall-clock-dependent: excluded from determinism
    /// comparisons.
    Runtime,
}

impl Class {
    /// Stable lower-case name used in exports.
    pub fn as_str(self) -> &'static str {
        match self {
            Class::Logical => "logical",
            Class::Runtime => "runtime",
        }
    }

    /// Inverse of [`Class::as_str`].
    pub fn parse(s: &str) -> Option<Class> {
        match s {
            "logical" => Some(Class::Logical),
            "runtime" => Some(Class::Runtime),
            _ => None,
        }
    }
}

/// Monotonically increasing event count.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Instantaneous level (entries live, bytes held).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrite the level.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raise the level by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Raise the level by one (a connection opened, a request queued).
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Lower the level by one (saturating at zero).
    #[inline]
    pub fn dec(&self) {
        self.sub(1);
    }

    /// Lower the level by `n` (saturating at zero).
    #[inline]
    pub fn sub(&self, n: u64) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Default)]
struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

/// Log2-bucketed distribution of non-negative observations.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Record one observation.
    #[inline]
    pub fn observe(&self, value: u64) {
        self.0.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Plain-data snapshot of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .0
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: self.0.sum.load(Ordering::Relaxed),
            count: self.0.count.load(Ordering::Relaxed),
        }
    }
}

#[derive(Debug, Clone)]
enum Instrument {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistogramCore>),
}

impl Instrument {
    fn kind(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
struct Slot {
    class: Class,
    instrument: Instrument,
}

/// One series identity: family name plus sorted label pairs.
type SeriesKey = (String, Vec<(String, String)>);

/// A set of named metric series. Most code uses the process-wide
/// [`global`] registry; tests build private ones.
#[derive(Debug, Default)]
pub struct Registry {
    series: Mutex<BTreeMap<SeriesKey, Slot>>,
}

fn key(name: &str, labels: &[(&str, &str)]) -> SeriesKey {
    let mut l: Vec<(String, String)> = labels
        .iter()
        .map(|&(k, v)| (k.to_string(), v.to_string()))
        .collect();
    l.sort();
    (name.to_string(), l)
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn slot(&self, name: &str, labels: &[(&str, &str)], class: Class, make: Instrument) -> Slot {
        let key = key(name, labels);
        let mut map = self.series.lock().unwrap();
        let slot = map.entry(key).or_insert_with(|| Slot {
            class,
            instrument: make.clone(),
        });
        assert_eq!(
            slot.instrument.kind(),
            make.kind(),
            "metric {name} re-registered as a different kind"
        );
        slot.clone()
    }

    /// Get or create the counter `name` (no labels).
    pub fn counter(&self, name: &str, class: Class) -> Counter {
        self.counter_with(name, &[], class)
    }

    /// Get or create the counter `name{labels}`.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)], class: Class) -> Counter {
        let slot = self.slot(
            name,
            labels,
            class,
            Instrument::Counter(Arc::new(AtomicU64::new(0))),
        );
        match slot.instrument {
            Instrument::Counter(c) => Counter(c),
            _ => unreachable!("slot() checks the kind"),
        }
    }

    /// Get or create the gauge `name` (no labels).
    pub fn gauge(&self, name: &str, class: Class) -> Gauge {
        self.gauge_with(name, &[], class)
    }

    /// Get or create the gauge `name{labels}`.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)], class: Class) -> Gauge {
        let slot = self.slot(
            name,
            labels,
            class,
            Instrument::Gauge(Arc::new(AtomicU64::new(0))),
        );
        match slot.instrument {
            Instrument::Gauge(g) => Gauge(g),
            _ => unreachable!("slot() checks the kind"),
        }
    }

    /// Get or create the histogram `name` (no labels).
    pub fn histogram(&self, name: &str, class: Class) -> Histogram {
        self.histogram_with(name, &[], class)
    }

    /// Get or create the histogram `name{labels}`.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)], class: Class) -> Histogram {
        let slot = self.slot(
            name,
            labels,
            class,
            Instrument::Histogram(Arc::new(HistogramCore::default())),
        );
        match slot.instrument {
            Instrument::Histogram(h) => Histogram(h),
            _ => unreachable!("slot() checks the kind"),
        }
    }

    /// Point-in-time copy of every series, deterministically ordered by
    /// (name, labels).
    pub fn snapshot(&self) -> Snapshot {
        let map = self.series.lock().unwrap();
        Snapshot {
            series: map
                .iter()
                .map(|((name, labels), slot)| Series {
                    name: name.clone(),
                    labels: labels.clone(),
                    class: slot.class,
                    value: match &slot.instrument {
                        Instrument::Counter(c) => SeriesValue::Counter(c.load(Ordering::Relaxed)),
                        Instrument::Gauge(g) => SeriesValue::Gauge(g.load(Ordering::Relaxed)),
                        Instrument::Histogram(h) => {
                            SeriesValue::Histogram(Histogram(Arc::clone(h)).snapshot())
                        }
                    },
                })
                .collect(),
        }
    }

    /// Zero every registered series in place (handles stay valid). Test
    /// hook: lets one process measure several runs independently.
    pub fn reset(&self) {
        let map = self.series.lock().unwrap();
        for slot in map.values() {
            match &slot.instrument {
                Instrument::Counter(c) | Instrument::Gauge(c) => c.store(0, Ordering::Relaxed),
                Instrument::Histogram(h) => {
                    for b in &h.buckets {
                        b.store(0, Ordering::Relaxed);
                    }
                    h.sum.store(0, Ordering::Relaxed);
                    h.count.store(0, Ordering::Relaxed);
                }
            }
        }
    }
}

/// The process-wide registry every instrumented layer reports into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_state() {
        let r = Registry::new();
        let a = r.counter("sb_test_events", Class::Logical);
        let b = r.counter("sb_test_events", Class::Logical);
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        assert_eq!(b.get(), 5);
    }

    #[test]
    fn labeled_series_are_distinct_and_label_order_is_canonical() {
        let r = Registry::new();
        let x = r.counter_with(
            "sb_test_phase",
            &[("phase", "a"), ("mode", "m")],
            Class::Runtime,
        );
        let y = r.counter_with(
            "sb_test_phase",
            &[("mode", "m"), ("phase", "a")],
            Class::Runtime,
        );
        let z = r.counter_with(
            "sb_test_phase",
            &[("phase", "b"), ("mode", "m")],
            Class::Runtime,
        );
        x.inc();
        assert_eq!(y.get(), 1, "label order must not split a series");
        assert_eq!(z.get(), 0);
    }

    #[test]
    fn gauge_set_add_sub() {
        let r = Registry::new();
        let g = r.gauge("sb_test_level", Class::Runtime);
        g.set(10);
        g.add(5);
        g.sub(3);
        assert_eq!(g.get(), 12);
        g.sub(100);
        assert_eq!(g.get(), 0, "gauges saturate at zero");
    }

    #[test]
    fn histogram_buckets_follow_log2_law() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_upper_bound(0), Some(0));
        assert_eq!(bucket_upper_bound(1), Some(1));
        assert_eq!(bucket_upper_bound(2), Some(3));
        assert_eq!(bucket_upper_bound(HISTOGRAM_BUCKETS - 1), None);

        let r = Registry::new();
        let h = r.histogram("sb_test_latency_us", Class::Runtime);
        for v in [0, 1, 3, 100] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 104);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[2], 1);
        assert_eq!(s.buckets[bucket_index(100)], 1);
    }

    #[test]
    fn snapshot_is_deterministically_ordered() {
        let r = Registry::new();
        r.counter("sb_z_last", Class::Logical).inc();
        r.counter("sb_a_first", Class::Logical).inc();
        r.counter_with("sb_m_mid", &[("k", "b")], Class::Logical)
            .inc();
        r.counter_with("sb_m_mid", &[("k", "a")], Class::Logical)
            .inc();
        let names: Vec<String> = r.snapshot().series.iter().map(|s| s.key_string()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        assert_eq!(names[0], "sb_a_first");
    }

    #[test]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("sb_test_dual", Class::Logical);
        let got = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            r.gauge("sb_test_dual", Class::Logical)
        }));
        assert!(got.is_err());
    }

    #[test]
    fn reset_zeroes_without_invalidating_handles() {
        let r = Registry::new();
        let c = r.counter("sb_test_reset", Class::Logical);
        let h = r.histogram("sb_test_reset_hist", Class::Runtime);
        c.add(7);
        h.observe(9);
        r.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(h.snapshot().count, 0);
        c.inc();
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn global_registry_is_shared() {
        let c = global().counter("sb_metrics_selftest_total", Class::Runtime);
        let before = c.get();
        global()
            .counter("sb_metrics_selftest_total", Class::Runtime)
            .inc();
        assert_eq!(c.get(), before + 1);
    }
}
