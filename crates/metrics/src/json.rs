//! A minimal recursive-descent JSON reader.
//!
//! The workspace builds offline with no serde, so the consumers that need
//! to read JSON back (metrics snapshots, `sbreak perfdiff` report files)
//! share this ~150-line parser instead. It accepts standard JSON with
//! objects, arrays, strings, numbers, booleans, and null; object key order
//! is preserved. Numbers are held as `f64`, which is exact for every
//! integer the runtime emits (counters stay far below 2^53).

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source key order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member of an object by key, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as u64, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Parse one JSON document; trailing whitespace is allowed, trailing
/// content is an error.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(JsonValue::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", JsonValue::Null),
        Some(_) => parse_number(b, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(JsonValue::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "invalid \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a valid &str).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(b, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(members));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        members.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

/// Escape `s` for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": [1, 2.5, -3], "b": {"c": "x\ny", "d": true}, "e": null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2],
            JsonValue::Num(-3.0)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("e"), Some(&JsonValue::Null));
    }

    #[test]
    fn escape_roundtrips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let doc = format!("{{\"k\":\"{}\"}}", escape(nasty));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse("nope").is_err());
    }

    #[test]
    fn u64_projection_rejects_fractions_and_negatives() {
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("7.5").unwrap().as_u64(), None);
        assert_eq!(parse("-7").unwrap().as_u64(), None);
    }
}
