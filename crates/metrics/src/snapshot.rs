//! Point-in-time snapshots of a [`Registry`](crate::Registry) and their
//! two export formats: a line-oriented JSON document (the `--metrics`
//! file, machine-diffable and re-parseable) and Prometheus text exposition
//! (for the serve daemon's `/stats` endpoint).

use crate::json::{self, JsonValue};
use crate::{bucket_upper_bound, Class, HISTOGRAM_BUCKETS};

/// Plain-data copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts; see [`crate::bucket_index`].
    pub buckets: Vec<u64>,
    /// Sum of all observed values.
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
}

/// Value of one series at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeriesValue {
    /// Monotonic count.
    Counter(u64),
    /// Instantaneous level.
    Gauge(u64),
    /// Distribution.
    Histogram(HistogramSnapshot),
}

impl SeriesValue {
    /// Stable kind name used in exports.
    pub fn kind(&self) -> &'static str {
        match self {
            SeriesValue::Counter(_) => "counter",
            SeriesValue::Gauge(_) => "gauge",
            SeriesValue::Histogram(_) => "histogram",
        }
    }

    /// Scalar payload for counters and gauges (histograms: `None`).
    pub fn scalar(&self) -> Option<u64> {
        match self {
            SeriesValue::Counter(v) | SeriesValue::Gauge(v) => Some(*v),
            SeriesValue::Histogram(_) => None,
        }
    }
}

/// One series in a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Family name (`sb_<crate>_<name>`).
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Thread-count invariance class.
    pub class: Class,
    /// The value.
    pub value: SeriesValue,
}

impl Series {
    /// Canonical `name{k="v",...}` identity (no labels: the bare name).
    pub fn key_string(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let labels: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", prom_escape(v)))
            .collect();
        format!("{}{{{}}}", self.name, labels.join(","))
    }
}

/// A deterministic, ordered copy of every series in a registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// All series, sorted by (name, labels).
    pub series: Vec<Series>,
}

impl Snapshot {
    /// The series with this exact name and labels, if present.
    pub fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Series> {
        let mut want: Vec<(String, String)> = labels
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect();
        want.sort();
        self.series
            .iter()
            .find(|s| s.name == name && s.labels == want)
    }

    /// Scalar value of the series `name` (no labels), or 0 when absent —
    /// convenient for report code that treats missing as "never happened".
    pub fn scalar_or_zero(&self, name: &str) -> u64 {
        self.find(name, &[])
            .and_then(|s| s.value.scalar())
            .unwrap_or(0)
    }

    /// Only the [`Class::Logical`] series: the thread-count-invariant
    /// subset that determinism tests compare.
    pub fn logical(&self) -> Snapshot {
        Snapshot {
            series: self
                .series
                .iter()
                .filter(|s| s.class == Class::Logical)
                .cloned()
                .collect(),
        }
    }

    /// Serialize as JSON: one series object per line inside a `"series"`
    /// array, so the file both parses as one document and greps line-wise.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"version\":1,\"series\":[\n");
        for (i, s) in self.series.iter().enumerate() {
            let labels: Vec<String> = s
                .labels
                .iter()
                .map(|(k, v)| format!("\"{}\":\"{}\"", json::escape(k), json::escape(v)))
                .collect();
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"labels\":{{{}}},\"class\":\"{}\",\"kind\":\"{}\"",
                json::escape(&s.name),
                labels.join(","),
                s.class.as_str(),
                s.value.kind()
            ));
            match &s.value {
                SeriesValue::Counter(v) | SeriesValue::Gauge(v) => {
                    out.push_str(&format!(",\"value\":{v}"));
                }
                SeriesValue::Histogram(h) => {
                    let buckets: Vec<String> = h.buckets.iter().map(|b| b.to_string()).collect();
                    out.push_str(&format!(
                        ",\"count\":{},\"sum\":{},\"buckets\":[{}]",
                        h.count,
                        h.sum,
                        buckets.join(",")
                    ));
                }
            }
            out.push('}');
            if i + 1 < self.series.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("]}\n");
        out
    }

    /// Parse a document produced by [`Snapshot::to_json`].
    pub fn parse_json(text: &str) -> Result<Snapshot, String> {
        let doc = json::parse(text)?;
        let series_json = doc
            .get("series")
            .and_then(JsonValue::as_arr)
            .ok_or("snapshot JSON has no \"series\" array")?;
        let mut series = Vec::with_capacity(series_json.len());
        for (i, s) in series_json.iter().enumerate() {
            let err = |what: &str| format!("series[{i}]: {what}");
            let name = s
                .get("name")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| err("missing name"))?
                .to_string();
            let mut labels: Vec<(String, String)> = s
                .get("labels")
                .and_then(JsonValue::as_obj)
                .unwrap_or(&[])
                .iter()
                .map(|(k, v)| (k.clone(), v.as_str().unwrap_or_default().to_string()))
                .collect();
            labels.sort();
            let class = s
                .get("class")
                .and_then(JsonValue::as_str)
                .and_then(Class::parse)
                .ok_or_else(|| err("bad class"))?;
            let kind = s
                .get("kind")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| err("missing kind"))?;
            let value = match kind {
                "counter" | "gauge" => {
                    let v = s
                        .get("value")
                        .and_then(JsonValue::as_u64)
                        .ok_or_else(|| err("missing value"))?;
                    if kind == "counter" {
                        SeriesValue::Counter(v)
                    } else {
                        SeriesValue::Gauge(v)
                    }
                }
                "histogram" => {
                    let buckets: Vec<u64> = s
                        .get("buckets")
                        .and_then(JsonValue::as_arr)
                        .ok_or_else(|| err("missing buckets"))?
                        .iter()
                        .map(|b| b.as_u64().unwrap_or(0))
                        .collect();
                    SeriesValue::Histogram(HistogramSnapshot {
                        buckets,
                        sum: s.get("sum").and_then(JsonValue::as_u64).unwrap_or(0),
                        count: s.get("count").and_then(JsonValue::as_u64).unwrap_or(0),
                    })
                }
                other => return Err(err(&format!("unknown kind {other:?}"))),
            };
            series.push(Series {
                name,
                labels,
                class,
                value,
            });
        }
        Ok(Snapshot { series })
    }

    /// Render in the Prometheus text exposition format: one `# TYPE` line
    /// per family, histograms expanded into cumulative `_bucket{le=...}`
    /// lines plus `_sum` and `_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_family: Option<&str> = None;
        for s in &self.series {
            if last_family != Some(s.name.as_str()) {
                out.push_str(&format!("# TYPE {} {}\n", s.name, s.value.kind()));
                last_family = Some(s.name.as_str());
            }
            match &s.value {
                SeriesValue::Counter(v) | SeriesValue::Gauge(v) => {
                    out.push_str(&format!("{}{} {v}\n", s.name, prom_labels(&s.labels, None)));
                }
                SeriesValue::Histogram(h) => {
                    let mut cumulative = 0u64;
                    for (i, &b) in h.buckets.iter().enumerate().take(HISTOGRAM_BUCKETS) {
                        cumulative += b;
                        // Collapse empty interior buckets; always emit the
                        // zero bucket and +Inf so the shape is recognizable.
                        let le = match bucket_upper_bound(i) {
                            Some(bound) => bound.to_string(),
                            None => "+Inf".to_string(),
                        };
                        if b > 0 || i == 0 || bucket_upper_bound(i).is_none() {
                            out.push_str(&format!(
                                "{}_bucket{} {cumulative}\n",
                                s.name,
                                prom_labels(&s.labels, Some(&le))
                            ));
                        }
                    }
                    out.push_str(&format!(
                        "{}_sum{} {}\n",
                        s.name,
                        prom_labels(&s.labels, None),
                        h.sum
                    ));
                    out.push_str(&format!(
                        "{}_count{} {}\n",
                        s.name,
                        prom_labels(&s.labels, None),
                        h.count
                    ));
                }
            }
        }
        out
    }
}

/// Escape a Prometheus label value: backslash, double-quote, newline.
fn prom_escape(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn prom_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", prom_escape(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Class, Registry};

    fn sample() -> Snapshot {
        let r = Registry::new();
        r.counter("sb_engine_graph_cache_hits", Class::Logical)
            .add(2);
        r.gauge("sb_engine_graph_cache_entries", Class::Runtime)
            .set(3);
        let h = r.histogram_with(
            "sb_par_phase_duration_us",
            &[("phase", "decompose")],
            Class::Runtime,
        );
        h.observe(0);
        h.observe(3);
        h.observe(3);
        h.observe(100);
        r.snapshot()
    }

    #[test]
    fn json_roundtrips_exactly() {
        let snap = sample();
        let parsed = Snapshot::parse_json(&snap.to_json()).unwrap();
        assert_eq!(parsed, snap);
    }

    #[test]
    fn logical_filter_drops_runtime_series() {
        let snap = sample().logical();
        assert_eq!(snap.series.len(), 1);
        assert_eq!(snap.series[0].name, "sb_engine_graph_cache_hits");
        assert_eq!(snap.scalar_or_zero("sb_engine_graph_cache_hits"), 2);
        assert_eq!(snap.scalar_or_zero("sb_engine_graph_cache_entries"), 0);
    }

    #[test]
    fn prometheus_text_format_is_pinned() {
        // The full exposition for a small registry, pinned byte-for-byte:
        // TYPE lines, cumulative buckets with collapsed empty interiors,
        // _sum/_count, and label escaping.
        let r = Registry::new();
        r.counter("sb_demo_total", Class::Logical).add(7);
        r.counter_with(
            "sb_demo_labeled",
            &[("name", "we\"ird\\path\nx")],
            Class::Runtime,
        )
        .add(1);
        let h = r.histogram("sb_demo_us", Class::Runtime);
        h.observe(0);
        h.observe(2);
        h.observe(2);
        let got = r.snapshot().to_prometheus();
        let want = "# TYPE sb_demo_labeled counter\n\
                    sb_demo_labeled{name=\"we\\\"ird\\\\path\\nx\"} 1\n\
                    # TYPE sb_demo_total counter\n\
                    sb_demo_total 7\n\
                    # TYPE sb_demo_us histogram\n\
                    sb_demo_us_bucket{le=\"0\"} 1\n\
                    sb_demo_us_bucket{le=\"3\"} 3\n\
                    sb_demo_us_bucket{le=\"+Inf\"} 3\n\
                    sb_demo_us_sum 4\n\
                    sb_demo_us_count 3\n";
        assert_eq!(got, want);
    }

    #[test]
    fn key_string_renders_labels() {
        let snap = sample();
        let hist = snap
            .find("sb_par_phase_duration_us", &[("phase", "decompose")])
            .unwrap();
        assert_eq!(
            hist.key_string(),
            "sb_par_phase_duration_us{phase=\"decompose\"}"
        );
    }
}
