//! The dataset registry: twelve stand-ins for the Table II suite.
//!
//! Every entry carries the statistics the paper reports for the real graph
//! (`PaperStats`) so benches can print paper-vs-measured side by side, and a
//! generator configuration tuned to land in the same shape bands at a
//! laptop-scale vertex budget. All generated graphs are made connected, as
//! the paper does with its inputs.

use crate::attach::{attach_graph, AttachParams};
use crate::connect::make_connected;
use crate::geometric::rgg_2d;
use crate::rmat::{rmat, RmatParams};
use crate::road::{road_like, RoadParams};
use crate::structured::{core_with_pendants, hub_and_chains, CorePendantParams, HubChainParams};
use sb_graph::csr::Graph;
use std::path::Path;

/// Identifier of a Table II graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphId {
    /// `c-73` — numerical simulation.
    C73,
    /// `lp1` — numerical simulation (LP basis).
    Lp1,
    /// `Cit-Patents` — citation network.
    CitPatents,
    /// `coAuthorsCiteseer` — collaboration network.
    CoAuthorsCiteseer,
    /// `germany-osm` — road network.
    GermanyOsm,
    /// `road-central` — road network.
    RoadCentral,
    /// `kron-g500-logn20` — synthetic Kronecker.
    KronLogn20,
    /// `kron-g500-logn21` — synthetic Kronecker.
    KronLogn21,
    /// `rgg-n-2-23-s0` — random geometric.
    Rgg23,
    /// `rgg-n-2-24-s0` — random geometric.
    Rgg24,
    /// `web-Google` — web graph.
    WebGoogle,
    /// `webbase-1M` — web graph.
    Webbase1M,
}

impl GraphId {
    /// All twelve graphs in Table II order.
    pub const ALL: [GraphId; 12] = [
        GraphId::C73,
        GraphId::Lp1,
        GraphId::CitPatents,
        GraphId::CoAuthorsCiteseer,
        GraphId::GermanyOsm,
        GraphId::RoadCentral,
        GraphId::KronLogn20,
        GraphId::KronLogn21,
        GraphId::Rgg23,
        GraphId::Rgg24,
        GraphId::WebGoogle,
        GraphId::Webbase1M,
    ];
}

/// Statistics of the real graph as reported in Table II.
#[derive(Debug, Clone, Copy)]
pub struct PaperStats {
    /// |V| of the real graph.
    pub num_vertices: usize,
    /// |E| of the real graph.
    pub num_edges: usize,
    /// %DEG2 column (percentage of vertices with degree ≤ 2).
    pub pct_deg2: f64,
    /// %BRIDGES column (percentage of edges that are bridges).
    pub pct_bridges: f64,
    /// Average degree column.
    pub avg_degree: f64,
}

/// A registry entry: names, class, paper statistics.
#[derive(Debug, Clone, Copy)]
pub struct DatasetSpec {
    /// Which graph.
    pub id: GraphId,
    /// Graph name as in Table II.
    pub name: &'static str,
    /// Graph class row label.
    pub class: &'static str,
    /// Table II values for the real graph.
    pub paper: PaperStats,
}

/// Size multiplier for the generated stand-ins.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scale {
    /// ≈ 5% of default — for unit/integration tests.
    Tiny,
    /// The default laptop-scale budget (10⁴–10⁵ vertices per graph).
    Default,
    /// Arbitrary multiplier on the default vertex budget.
    Factor(f64),
}

impl Scale {
    /// The multiplier this scale applies to the default vertex budget
    /// (`Tiny` = 0.05, `Default` = 1.0). Public so callers that key on
    /// scale (the engine's graph cache) normalize consistently.
    pub fn factor(self) -> f64 {
        match self {
            Scale::Tiny => 0.05,
            Scale::Default => 1.0,
            Scale::Factor(f) => f,
        }
    }
}

/// Look up the registry entry for `id`.
pub fn spec(id: GraphId) -> DatasetSpec {
    use GraphId::*;
    let s = |id, name, class, v, e, d2, br, avg| DatasetSpec {
        id,
        name,
        class,
        paper: PaperStats {
            num_vertices: v,
            num_edges: e,
            pct_deg2: d2,
            pct_bridges: br,
            avg_degree: avg,
        },
    };
    match id {
        C73 => s(
            id,
            "c-73",
            "Numerical simulations",
            169_422,
            1_109_852,
            48.7,
            14.9,
            6.6,
        ),
        Lp1 => s(
            id,
            "lp1",
            "Numerical simulations",
            534_388,
            1_109_032,
            93.8,
            92.7,
            2.1,
        ),
        CitPatents => s(
            id,
            "Cit-Patents",
            "Collaboration",
            3_774_768,
            33_045_146,
            28.06,
            4.1,
            8.8,
        ),
        CoAuthorsCiteseer => s(
            id,
            "coAuthorsCiteseer",
            "Collaboration",
            227_320,
            1_628_268,
            28.97,
            3.7,
            7.2,
        ),
        GermanyOsm => s(
            id,
            "germany-osm",
            "Road",
            11_548_845,
            24_738_362,
            82.27,
            19.9,
            2.1,
        ),
        RoadCentral => s(
            id,
            "road-central",
            "Road",
            14_081_816,
            33_866_826,
            50.91,
            25.0,
            2.4,
        ),
        KronLogn20 => s(
            id,
            "kron-g500-logn20",
            "Synthetic",
            1_048_576,
            89_238_804,
            42.1,
            0.3,
            85.1,
        ),
        KronLogn21 => s(
            id,
            "kron-g500-logn21",
            "Synthetic",
            2_097_152,
            182_081_864,
            44.59,
            0.3,
            86.8,
        ),
        Rgg23 => s(
            id,
            "rgg-n-2-23-s0",
            "Random geometric",
            8_388_608,
            127_002_794,
            0.0,
            0.0,
            15.1,
        ),
        Rgg24 => s(
            id,
            "rgg-n-2-24-s0",
            "Random geometric",
            16_777_216,
            265_114_402,
            0.0,
            0.0,
            15.8,
        ),
        WebGoogle => s(
            id,
            "web-Google",
            "Web",
            916_428,
            10_296_998,
            30.67,
            4.0,
            11.2,
        ),
        Webbase1M => s(
            id,
            "webbase-1M",
            "Web",
            1_000_005,
            4_216_602,
            87.35,
            38.3,
            4.2,
        ),
    }
}

/// Generate the stand-in for `id` at the given scale; always connected.
pub fn generate(id: GraphId, scale: Scale, seed: u64) -> Graph {
    let f = scale.factor();
    let sz = |base: usize| ((base as f64 * f) as usize).max(64);
    let dim = |base: usize| ((base as f64 * f.sqrt()) as usize).max(8);
    use GraphId::*;
    let g = match id {
        C73 => core_with_pendants(
            CorePendantParams {
                n: sz(24_000),
                core_frac: 0.52,
                core_degree: 11.0,
                max_chain: 2,
            },
            seed,
        ),
        Lp1 => hub_and_chains(
            HubChainParams {
                n: sz(50_000),
                hub_every: 30,
                max_chain: 3,
                chord_frac: 0.012,
            },
            seed,
        ),
        CitPatents => attach_graph(
            AttachParams {
                n: sz(40_000),
                p_low: 0.40,
                m_high: 7,
                uniform_mix: 0.05,
                low_vertices_attract: false,
            },
            seed,
        ),
        CoAuthorsCiteseer => attach_graph(
            AttachParams {
                n: sz(25_000),
                p_low: 0.40,
                m_high: 6,
                uniform_mix: 0.05,
                low_vertices_attract: false,
            },
            seed,
        ),
        GermanyOsm => road_like(
            RoadParams {
                width: dim(90),
                height: dim(90),
                delete_frac: 0.22,
                mean_subdivision: 2.5,
                pendant_frac: 0.55,
            },
            seed,
        ),
        RoadCentral => road_like(
            RoadParams {
                width: dim(120),
                height: dim(120),
                delete_frac: 0.30,
                mean_subdivision: 0.25,
                pendant_frac: 0.45,
            },
            seed,
        ),
        KronLogn20 => rmat(kron_scale(14, f), 64, RmatParams::GRAPH500, seed),
        KronLogn21 => rmat(kron_scale(15, f), 66, RmatParams::GRAPH500, seed),
        Rgg23 => rgg_2d(sz(60_000), 15.1, seed),
        Rgg24 => rgg_2d(sz(90_000), 15.8, seed),
        WebGoogle => attach_graph(
            AttachParams {
                n: sz(40_000),
                p_low: 0.42,
                m_high: 10,
                uniform_mix: 0.08,
                low_vertices_attract: false,
            },
            seed,
        ),
        Webbase1M => attach_graph(
            AttachParams {
                n: sz(45_000),
                p_low: 0.88,
                m_high: 12,
                uniform_mix: 0.03,
                low_vertices_attract: false,
            },
            seed,
        ),
    };
    make_connected(&g)
}

/// Adjust an R-MAT scale exponent by a size factor (log2 steps).
fn kron_scale(base: u32, f: f64) -> u32 {
    let shift = f.log2().round() as i32;
    (base as i32 + shift).clamp(6, 24) as u32
}

/// Use a real SuiteSparse `.mtx` file from `dir` when present (named
/// `<name>.mtx`), otherwise generate the stand-in.
pub fn load_or_generate(id: GraphId, dir: Option<&Path>, scale: Scale, seed: u64) -> Graph {
    if let Some(d) = dir {
        let path = d.join(format!("{}.mtx", spec(id).name));
        if path.exists() {
            if let Ok(g) = sb_graph::io::read_path(&path) {
                return make_connected(&g);
            }
        }
    }
    generate(id, scale, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_graph::stats::GraphStats;

    #[test]
    fn all_specs_resolve() {
        for id in GraphId::ALL {
            let sp = spec(id);
            assert!(!sp.name.is_empty());
            assert!(sp.paper.num_vertices > 0);
        }
    }

    #[test]
    fn tiny_suite_generates_connected_graphs() {
        for id in GraphId::ALL {
            let g = generate(id, Scale::Tiny, 42);
            assert!(g.num_vertices() > 0, "{id:?}");
            assert!(g.num_edges() > 0, "{id:?}");
            let c = sb_graph::components::components_sequential(&g, None);
            assert_eq!(c.count, 1, "{id:?} must be connected");
        }
    }

    #[test]
    fn tiny_suite_shapes_track_paper_bands() {
        // Loose sanity bands at tiny scale; the full-scale validation lives
        // in the table2 bench (EXPERIMENTS.md).
        for id in GraphId::ALL {
            let sp = spec(id);
            let g = generate(id, Scale::Tiny, 7);
            let s = GraphStats::compute(&g);
            // Average degree within a factor of 2.5 of the paper's (kron is
            // allowed more slack: dedup at small scale cuts it further).
            let tol = if matches!(id, GraphId::KronLogn20 | GraphId::KronLogn21) {
                4.0
            } else {
                2.5
            };
            let ratio = s.avg_degree / sp.paper.avg_degree;
            assert!(
                ratio > 1.0 / tol && ratio < tol,
                "{:?}: avg degree {} vs paper {}",
                id,
                s.avg_degree,
                sp.paper.avg_degree
            );
            // Low-degree-dominated graphs must stay low-degree dominated.
            if sp.paper.pct_deg2 > 80.0 {
                assert!(s.pct_deg_le2 > 60.0, "{:?}: %deg2 {}", id, s.pct_deg_le2);
            }
            if sp.paper.pct_deg2 < 1.0 {
                assert!(s.pct_deg_le2 < 10.0, "{:?}: %deg2 {}", id, s.pct_deg_le2);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(GraphId::C73, Scale::Tiny, 5);
        let b = generate(GraphId::C73, Scale::Tiny, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn load_or_generate_falls_back() {
        let g = load_or_generate(GraphId::Lp1, None, Scale::Tiny, 3);
        assert!(g.num_vertices() > 0);
        let g2 = load_or_generate(
            GraphId::Lp1,
            Some(Path::new("/nonexistent-dir")),
            Scale::Tiny,
            3,
        );
        assert_eq!(g, g2);
    }
}
