//! R-MAT / Kronecker graphs — stand-ins for `kron-g500-logn20/21`.
//!
//! The Graph500 Kronecker generator with the standard parameters
//! (a, b, c, d) = (0.57, 0.19, 0.19, 0.05): each edge is placed by
//! descending `log2(n)` levels of a 2×2 recursive partition of the adjacency
//! matrix. The result is a heavy-tailed, high-average-degree graph with a
//! large fraction of low-degree vertices — the combination Table II reports
//! for the kron instances (avg degree ≈ 85 with ≈ 43% of vertices of degree
//! ≤ 2) and that defeats MM-Rand at the default partition count.

use rayon::prelude::*;
use sb_graph::builder::GraphBuilder;
use sb_graph::csr::Graph;
use sb_par::rng::{hash3, unit_f64};

/// R-MAT quadrant probabilities.
#[derive(Debug, Clone, Copy)]
pub struct RmatParams {
    /// Top-left quadrant probability.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
}

impl RmatParams {
    /// The Graph500 parameter set.
    pub const GRAPH500: RmatParams = RmatParams {
        a: 0.57,
        b: 0.19,
        c: 0.19,
    };
}

/// Generate an R-MAT graph on `2^scale` vertices with `edge_factor × 2^scale`
/// sampled edge slots (duplicates and self-loops are dropped, so the final
/// edge count is somewhat lower — as in the real kron datasets).
pub fn rmat(scale: u32, edge_factor: usize, params: RmatParams, seed: u64) -> Graph {
    let n = 1usize << scale;
    let m_raw = edge_factor * n;
    let RmatParams { a, b, c } = params;
    let edges: Vec<(u32, u32)> = (0..m_raw)
        .into_par_iter()
        .map(|i| {
            let (mut u, mut v) = (0u32, 0u32);
            for level in 0..scale {
                let x = unit_f64(hash3(seed, i as u64, level as u64));
                // Add a little per-level noise so the generated graph is not
                // exactly self-similar (the Graph500 "noise" refinement).
                let jitter = 0.05 * (unit_f64(hash3(seed ^ 0xABCD, i as u64, level as u64)) - 0.5);
                let aa = (a + jitter).clamp(0.0, 1.0);
                let (du, dv) = if x < aa {
                    (0, 0)
                } else if x < aa + b {
                    (0, 1)
                } else if x < aa + b + c {
                    (1, 0)
                } else {
                    (1, 1)
                };
                u = (u << 1) | du;
                v = (v << 1) | dv;
            }
            (u, v)
        })
        .collect();
    GraphBuilder::new(n).edges(edges).build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_graph::stats::GraphStats;

    #[test]
    fn heavy_tail_and_low_degree_mass_coexist() {
        let g = rmat(12, 16, RmatParams::GRAPH500, 9);
        let s = GraphStats::compute(&g);
        // Max degree far above the mean (power-law-ish head)…
        assert!(s.max_degree as f64 > 8.0 * s.avg_degree);
        // …and a sizable share of degree ≤ 2 vertices at the tail.
        assert!(
            s.pct_deg_le2 > 20.0,
            "%deg2 = {} too small for kron-like shape",
            s.pct_deg_le2
        );
    }

    #[test]
    fn duplicates_reduce_edges_below_raw_count() {
        let g = rmat(10, 16, RmatParams::GRAPH500, 4);
        assert!(g.num_edges() < 16 << 10);
        assert!(g.num_edges() > (16 << 10) / 4);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = rmat(9, 8, RmatParams::GRAPH500, 5);
        let b = rmat(9, 8, RmatParams::GRAPH500, 5);
        assert_eq!(a, b);
        let c = rmat(9, 8, RmatParams::GRAPH500, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn vertex_count_is_power_of_two() {
        let g = rmat(8, 4, RmatParams::GRAPH500, 1);
        assert_eq!(g.num_vertices(), 256);
        g.validate().unwrap();
    }
}
