//! Road-network stand-ins for `germany-osm` / `road-central`.
//!
//! Road networks are near-planar, have average degree ≈ 2.1–2.4, an enormous
//! diameter, a large fraction of degree-2 vertices (polyline subdivision
//! points), and 20–25% bridge edges. The generator reproduces exactly that
//! recipe: a sparse 2-D lattice with a fraction of its links deleted, whose
//! remaining links are then subdivided into polylines of random length.

use rayon::prelude::*;
use sb_graph::builder::GraphBuilder;
use sb_graph::csr::Graph;
use sb_par::rng::{hash2, hash3, unit_f64};

/// Parameters for the road generator.
#[derive(Debug, Clone, Copy)]
pub struct RoadParams {
    /// Lattice width (junction grid is `width × height`).
    pub width: usize,
    /// Lattice height.
    pub height: usize,
    /// Fraction of lattice links deleted before subdivision (creates dead
    /// ends and bridges).
    pub delete_frac: f64,
    /// Mean number of interior degree-2 vertices per link (polyline
    /// subdivision). Non-integer means are realized as
    /// `floor(mean) + Bernoulli(frac(mean))`.
    pub mean_subdivision: f64,
    /// Fraction of junctions that grow a pendant dead-end street (a
    /// subdivided chain). Dead-end edges are bridges — road networks owe
    /// their 20–25% bridge share (Table II) to exactly these.
    pub pendant_frac: f64,
}

/// Generate a road-like graph. Final vertex count is
/// `width × height + (interior subdivision points)`.
pub fn road_like(p: RoadParams, seed: u64) -> Graph {
    let RoadParams {
        width: w,
        height: h,
        delete_frac,
        mean_subdivision,
        pendant_frac,
    } = p;
    let id = |x: usize, y: usize| (y * w + x) as u32;

    // Lattice links that survive deletion.
    let mut links: Vec<(u32, u32)> = Vec::new();
    let mut link_no = 0u64;
    for y in 0..h {
        for x in 0..w {
            for (nx, ny) in [(x + 1, y), (x, y + 1)] {
                if nx < w && ny < h {
                    link_no += 1;
                    if unit_f64(hash2(seed, link_no)) >= delete_frac {
                        links.push((id(x, y), id(nx, ny)));
                    }
                }
            }
        }
    }

    // Dead-end streets: selected junctions grow one pendant link, which the
    // subdivision below turns into a chain.
    let mut pendant_heads = 0u32;
    for j in 0..(w * h) as u32 {
        if unit_f64(hash3(seed ^ 0x77, 2, j as u64)) < pendant_frac {
            links.push((j, u32::MAX - pendant_heads)); // placeholder head id
            pendant_heads += 1;
        }
    }

    // Subdivision: link i gets t_i interior vertices; allocate their ids with
    // a scan so generation stays deterministic and parallel.
    let whole = mean_subdivision.floor() as usize;
    let frac = mean_subdivision - mean_subdivision.floor();
    let ts: Vec<usize> = links
        .par_iter()
        .enumerate()
        .map(|(i, _)| whole + usize::from(unit_f64(hash3(seed ^ 0x5D, 1, i as u64)) < frac))
        .collect();
    let (starts, extra) = sb_par::prim::exclusive_scan_vec(&ts);
    let base = w * h;
    // Pendant heads get real ids after the subdivision block.
    let n = base + extra + pendant_heads as usize;
    let head_base = (base + extra) as u32;
    let links: Vec<(u32, u32)> = links
        .into_iter()
        .map(|(u, v)| {
            if v > u32::MAX - pendant_heads {
                (u, head_base + (u32::MAX - v))
            } else {
                (u, v)
            }
        })
        .collect();

    let edges: Vec<(u32, u32)> = links
        .par_iter()
        .zip(ts.par_iter())
        .zip(starts.par_iter())
        .flat_map_iter(|((&(u, v), &t), &s)| {
            let mut path = Vec::with_capacity(t + 1);
            let mut prev = u;
            for j in 0..t {
                let mid = (base + s + j) as u32;
                path.push((prev, mid));
                prev = mid;
            }
            path.push((prev, v));
            path
        })
        .collect();

    GraphBuilder::new(n).edges(edges).build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_graph::stats::GraphStats;

    #[test]
    fn germany_shape_high_deg2_low_avg() {
        let g = road_like(
            RoadParams {
                width: 60,
                height: 60,
                delete_frac: 0.25,
                mean_subdivision: 3.0,
                pendant_frac: 0.0,
            },
            1,
        );
        let s = GraphStats::compute(&g);
        assert!(
            s.pct_deg_le2 > 70.0,
            "subdivided road should be mostly degree ≤ 2, got {}",
            s.pct_deg_le2
        );
        assert!(
            s.avg_degree > 1.7 && s.avg_degree < 2.6,
            "avg {}",
            s.avg_degree
        );
    }

    #[test]
    fn no_subdivision_keeps_lattice_size() {
        let g = road_like(
            RoadParams {
                width: 10,
                height: 10,
                delete_frac: 0.0,
                mean_subdivision: 0.0,
                pendant_frac: 0.0,
            },
            2,
        );
        assert_eq!(g.num_vertices(), 100);
        assert_eq!(g.num_edges(), 2 * 10 * 9);
    }

    #[test]
    fn subdivision_preserves_path_connectivity() {
        // With no deletion the subdivided lattice must stay connected.
        let g = road_like(
            RoadParams {
                width: 8,
                height: 8,
                delete_frac: 0.0,
                mean_subdivision: 1.5,
                pendant_frac: 0.0,
            },
            3,
        );
        let c = sb_graph::components::components_sequential(&g, None);
        assert_eq!(c.count, 1);
    }

    #[test]
    fn interior_vertices_have_degree_two() {
        let g = road_like(
            RoadParams {
                width: 6,
                height: 6,
                delete_frac: 0.0,
                mean_subdivision: 2.0,
                pendant_frac: 0.0,
            },
            4,
        );
        for v in 36..g.num_vertices() {
            assert_eq!(g.degree(v as u32), 2, "subdivision vertex {v}");
        }
    }

    #[test]
    fn pendants_create_bridges() {
        let g = road_like(
            RoadParams {
                width: 30,
                height: 30,
                delete_frac: 0.1,
                mean_subdivision: 0.5,
                pendant_frac: 0.4,
            },
            5,
        );
        let bridges = sb_decompose::bridge::find_bridges(&g, &sb_par::counters::Counters::new());
        let pct = 100.0 * bridges.len() as f64 / g.num_edges() as f64;
        assert!(pct > 10.0, "%bridges {pct} too low with pendants");
    }

    #[test]
    fn deterministic_per_seed() {
        let p = RoadParams {
            width: 12,
            height: 12,
            delete_frac: 0.2,
            mean_subdivision: 2.0,
            pendant_frac: 0.0,
        };
        assert_eq!(road_like(p, 9), road_like(p, 9));
    }
}
