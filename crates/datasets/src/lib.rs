//! Synthetic stand-ins for the paper's Table II dataset.
//!
//! The original study uses twelve SuiteSparse graphs (up to 265 M edges).
//! This crate generates a same-shaped suite at laptop scale: one generator
//! per graph *class*, each tuned so the statistics the paper reports — and
//! that drive its results — land in the right band: the fraction of
//! degree-≤2 vertices (%DEG2), the fraction of bridge edges (%BRIDGES), the
//! average degree, and the diameter class. See DESIGN.md §2 for the
//! substitution argument, and the tests in [`suite`] for the per-graph
//! validation bands.
//!
//! Real SuiteSparse files drop in transparently: point
//! [`suite::load_or_generate`] at a directory of `.mtx` files named after
//! the Table II graphs and they will be used instead of the generators.
//!
//! Generator modules:
//! * [`geometric`] — random geometric graphs (`rgg-n-2-23-s0`, `rgg-n-2-24-s0`).
//! * [`rmat`] — R-MAT/Kronecker graphs (`kron-g500-logn20/21`).
//! * [`road`] — subdivided sparse meshes (`germany-osm`, `road-central`).
//! * [`attach`] — preferential-attachment and copying-model graphs
//!   (`Cit-Patents`, `coAuthorsCiteseer`, `web-Google`, `webbase-1M`).
//! * [`structured`] — the hub-and-chain `lp1` and core-plus-pendant `c-73`
//!   shapes from numerical-simulation matrices.
//! * [`connect`] — connectivity augmentation (the paper adds edges to make
//!   each graph connected).
//! * [`suite`] — the dataset registry with paper-reported reference values.

pub mod attach;
pub mod connect;
pub mod geometric;
pub mod rmat;
pub mod road;
pub mod structured;
pub mod suite;

pub use suite::{DatasetSpec, GraphId, PaperStats, Scale};
