//! Connectivity augmentation.
//!
//! The paper notes: "For graphs that are not connected, we add additional
//! edges to make the graph connected." This module does the same: find the
//! components and chain their representatives together, adding exactly
//! `count − 1` edges.

use sb_graph::builder::GraphBuilder;
use sb_graph::components::components_sequential;
use sb_graph::csr::Graph;

/// Return `g` if already connected; otherwise a copy with `components − 1`
/// extra edges attaching every component's representative to the largest
/// component's representative (a star, so the augmentation does not
/// manufacture long paths — a chain of the thousands of isolated vertices
/// a small-scale Kronecker graph has would distort the diameter and the
/// degree-≤2 structure the study depends on).
pub fn make_connected(g: &Graph) -> Graph {
    let comps = components_sequential(g, None);
    if comps.count <= 1 {
        return g.clone();
    }
    // Representative of the largest component becomes the hub.
    let mut sizes = std::collections::HashMap::<u32, usize>::new();
    for &l in &comps.label {
        *sizes.entry(l).or_insert(0) += 1;
    }
    let hub = *sizes.iter().max_by_key(|&(_, &c)| c).unwrap().0;
    let mut reps: Vec<u32> = comps.label.clone();
    reps.sort_unstable();
    reps.dedup();
    let mut b = GraphBuilder::new(g.num_vertices());
    for &[u, v] in g.edge_list() {
        b.push(u, v);
    }
    for &r in &reps {
        if r != hub {
            b.push(hub, r);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_graph::builder::from_edge_list;

    #[test]
    fn already_connected_is_unchanged() {
        let g = from_edge_list(4, &[(0, 1), (1, 2), (2, 3)]);
        let c = make_connected(&g);
        assert_eq!(g, c);
    }

    #[test]
    fn connects_components_with_minimum_edges() {
        let g = from_edge_list(6, &[(0, 1), (2, 3), (4, 5)]);
        let c = make_connected(&g);
        assert_eq!(c.num_edges(), g.num_edges() + 2);
        assert_eq!(components_sequential(&c, None).count, 1);
    }

    #[test]
    fn isolated_vertices_get_linked() {
        let g = Graph::empty(5);
        let c = make_connected(&g);
        assert_eq!(components_sequential(&c, None).count, 1);
        assert_eq!(c.num_edges(), 4);
    }

    #[test]
    fn augmentation_is_a_star_not_a_chain() {
        // One real component + many singletons: the singletons must attach
        // to the big component's representative, keeping the diameter O(1)
        // instead of O(#components).
        let mut edges = vec![(0u32, 1u32), (1, 2), (2, 0)];
        edges.push((0, 3)); // make component {0,1,2,3} the largest
        let g = from_edge_list(40, &edges);
        let c = make_connected(&g);
        assert_eq!(components_sequential(&c, None).count, 1);
        let diam = sb_graph::bfs::pseudo_diameter(&c, 0, &sb_par::counters::Counters::new());
        assert!(
            diam <= 4,
            "star augmentation keeps diameter small, got {diam}"
        );
    }
}
