//! Random geometric graphs — stand-ins for `rgg-n-2-23-s0` / `rgg-n-2-24-s0`.
//!
//! `n` points uniform in the unit square, an edge between every pair at
//! distance ≤ r. With `r = sqrt(target_degree / (π n))` the expected degree
//! is `target_degree`. RGGs have essentially no degree-≤2 vertices and no
//! bridges at degree 15 — the properties Table II reports (0% / 0%) and that
//! make the paper's Deg2-based algorithms gain nothing on them.

use rayon::prelude::*;
use sb_graph::builder::GraphBuilder;
use sb_graph::csr::Graph;
use sb_par::rng::{hash2, unit_f64};

/// Generate a random geometric graph with expected average degree
/// `target_degree`.
///
/// Vertices are numbered in spatial (grid-row) order, as in the SuiteSparse
/// `rgg-n-2-*` files: geometric neighbors then have nearby ids, which is
/// what makes Algorithm GM's lowest-id proposal chains — the paper's
/// ~14,000-iteration *vain tendency* on these instances — reproducible.
pub fn rgg_2d(n: usize, target_degree: f64, seed: u64) -> Graph {
    assert!(n > 0);
    let r = (target_degree / (std::f64::consts::PI * n as f64)).sqrt();
    let mut pts: Vec<(f64, f64)> = (0..n)
        .into_par_iter()
        .map(|i| {
            (
                unit_f64(hash2(seed, 2 * i as u64)),
                unit_f64(hash2(seed, 2 * i as u64 + 1)),
            )
        })
        .collect();
    // Spatial numbering: sort by grid row, then x.
    pts.par_sort_unstable_by(|a, b| {
        let row = |p: &(f64, f64)| (p.1 / r) as i64;
        (row(a), a.0, a.1).partial_cmp(&(row(b), b.0, b.1)).unwrap()
    });

    // Bucket points into a grid of cell size r; neighbors live in the 3×3
    // cell neighborhood.
    let cells = ((1.0 / r).floor() as usize).clamp(1, 1 << 12);
    let cell_of = |p: (f64, f64)| -> (usize, usize) {
        let cx = ((p.0 * cells as f64) as usize).min(cells - 1);
        let cy = ((p.1 * cells as f64) as usize).min(cells - 1);
        (cx, cy)
    };
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); cells * cells];
    for (i, &p) in pts.iter().enumerate() {
        let (cx, cy) = cell_of(p);
        buckets[cy * cells + cx].push(i as u32);
    }

    let r2 = r * r;
    let edges: Vec<(u32, u32)> = (0..n)
        .into_par_iter()
        .flat_map_iter(|i| {
            let (x, y) = pts[i];
            let (cx, cy) = cell_of((x, y));
            let xlo = cx.saturating_sub(1);
            let xhi = (cx + 1).min(cells - 1);
            let ylo = cy.saturating_sub(1);
            let yhi = (cy + 1).min(cells - 1);
            let mut local = Vec::new();
            for by in ylo..=yhi {
                for bx in xlo..=xhi {
                    for &j in &buckets[by * cells + bx] {
                        if (j as usize) <= i {
                            continue;
                        }
                        let (px, py) = pts[j as usize];
                        let (dx, dy) = (px - x, py - y);
                        if dx * dx + dy * dy <= r2 {
                            local.push((i as u32, j));
                        }
                    }
                }
            }
            local
        })
        .collect();

    GraphBuilder::new(n).edges(edges).build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_graph::stats::GraphStats;

    #[test]
    fn average_degree_near_target() {
        let g = rgg_2d(20_000, 15.0, 42);
        let s = GraphStats::compute(&g);
        // Boundary effects pull the realized mean slightly below target.
        assert!(
            s.avg_degree > 11.0 && s.avg_degree < 16.5,
            "avg degree {}",
            s.avg_degree
        );
    }

    #[test]
    fn almost_no_low_degree_vertices() {
        let g = rgg_2d(20_000, 15.0, 7);
        let s = GraphStats::compute(&g);
        assert!(s.pct_deg_le2 < 2.0, "%deg2 = {}", s.pct_deg_le2);
    }

    #[test]
    fn vertex_ids_are_spatially_ordered() {
        // Spatial numbering ⇒ geometric neighbors have nearby ids: the
        // median id gap across edges must be a tiny fraction of n.
        let n = 20_000usize;
        let g = rgg_2d(n, 15.0, 3);
        let mut gaps: Vec<u32> = g.edge_list().iter().map(|&[u, v]| v - u).collect();
        gaps.sort_unstable();
        let median = gaps[gaps.len() / 2] as f64;
        assert!(
            median < n as f64 * 0.02,
            "median neighbor id gap {median} too large for spatial order"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = rgg_2d(3_000, 10.0, 5);
        let b = rgg_2d(3_000, 10.0, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn tiny_instances_work() {
        let g = rgg_2d(1, 5.0, 1);
        assert_eq!(g.num_vertices(), 1);
        assert_eq!(g.num_edges(), 0);
        let g = rgg_2d(10, 3.0, 1);
        g.validate().unwrap();
    }
}
