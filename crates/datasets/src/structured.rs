//! Structured stand-ins for the numerical-simulation matrices.
//!
//! * [`hub_and_chains`] — the `lp1` shape: a thin layer of hub vertices with
//!   a forest of short chains hanging off them, plus a pinch of chord edges.
//!   Nearly every edge is a bridge (Table II: 92.7%) and nearly every vertex
//!   has degree ≤ 2 (93.8%) at average degree ≈ 2.1 — the instance where
//!   MIS-Deg2 reaches its 10.5× CPU speedup.
//! * [`core_with_pendants`] — the `c-73` shape: a dense random core on about
//!   half the vertices with pendant chains attached; ≈ 49% of vertices have
//!   degree ≤ 2 and ≈ 15% of edges are bridges at average degree ≈ 6.6.

use rand::{RngExt, SeedableRng};
use sb_graph::builder::GraphBuilder;
use sb_graph::csr::Graph;

/// Parameters for the `lp1`-like generator.
#[derive(Debug, Clone, Copy)]
pub struct HubChainParams {
    /// Total vertex budget.
    pub n: usize,
    /// One hub per `hub_every` vertices.
    pub hub_every: usize,
    /// Maximum chain length hanging off a hub.
    pub max_chain: usize,
    /// Fraction of extra chord edges (relative to n) closing cycles so the
    /// bridge share dips below 100%.
    pub chord_frac: f64,
}

/// Generate the hub-and-chains (`lp1`-like) graph.
pub fn hub_and_chains(p: HubChainParams, seed: u64) -> Graph {
    let HubChainParams {
        n,
        hub_every,
        max_chain,
        chord_frac,
    } = p;
    assert!(hub_every >= 2 && max_chain >= 1);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let hubs = (n / hub_every).max(1);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    // Hubs form a path (in shuffled order, to avoid an artificial
    // consecutive-id chain) so the backbone is connected.
    let mut hub_order: Vec<u32> = (0..hubs as u32).collect();
    use rand::seq::SliceRandom;
    hub_order.shuffle(&mut rng);
    for w in hub_order.windows(2) {
        edges.push((w[0], w[1]));
    }
    // Remaining vertices go into chains attached to random hubs.
    let mut v = hubs;
    while v < n {
        let hub = rng.random_range(0..hubs) as u32;
        let len = rng.random_range(1..=max_chain).min(n - v);
        let mut prev = hub;
        for j in 0..len {
            let cur = (v + j) as u32;
            edges.push((prev, cur));
            prev = cur;
        }
        v += len;
    }
    // Chords: connect random chain vertices, closing a few cycles.
    let chords = (n as f64 * chord_frac) as usize;
    for _ in 0..chords {
        let a = rng.random_range(hubs..n) as u32;
        let b = rng.random_range(hubs..n) as u32;
        if a != b {
            edges.push((a, b));
        }
    }
    GraphBuilder::new(n).edges(edges).build()
}

/// Parameters for the `c-73`-like generator.
#[derive(Debug, Clone, Copy)]
pub struct CorePendantParams {
    /// Total vertex budget.
    pub n: usize,
    /// Fraction of vertices in the dense core.
    pub core_frac: f64,
    /// Average degree inside the core.
    pub core_degree: f64,
    /// Maximum pendant chain length (chains attach core → fringe).
    pub max_chain: usize,
}

/// Generate the core-with-pendants (`c-73`-like) graph.
pub fn core_with_pendants(p: CorePendantParams, seed: u64) -> Graph {
    let CorePendantParams {
        n,
        core_frac,
        core_degree,
        max_chain,
    } = p;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let core = ((n as f64 * core_frac) as usize).clamp(2, n);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    // Dense Erdős–Rényi-style core: m = core_degree × core / 2 random pairs,
    // plus a spanning path in *shuffled* order so the core is connected
    // without injecting an artificial consecutive-id chain (which would
    // fabricate a vain-tendency pathology the real c-73 does not have).
    let mut order: Vec<u32> = (0..core as u32).collect();
    use rand::seq::SliceRandom;
    order.shuffle(&mut rng);
    for w in order.windows(2) {
        edges.push((w[0], w[1]));
    }
    let m_core = (core_degree * core as f64 / 2.0) as usize;
    for _ in 0..m_core.saturating_sub(core - 1) {
        let a = rng.random_range(0..core) as u32;
        let b = rng.random_range(0..core) as u32;
        if a != b {
            edges.push((a, b));
        }
    }
    // Pendant chains on the fringe.
    let mut v = core;
    while v < n {
        let anchor = rng.random_range(0..core) as u32;
        let len = rng.random_range(1..=max_chain).min(n - v);
        let mut prev = anchor;
        for j in 0..len {
            let cur = (v + j) as u32;
            edges.push((prev, cur));
            prev = cur;
        }
        v += len;
    }
    GraphBuilder::new(n).edges(edges).build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_decompose::bridge::find_bridges;
    use sb_graph::stats::GraphStats;
    use sb_par::counters::Counters;

    #[test]
    fn lp1_shape_bands() {
        let g = hub_and_chains(
            HubChainParams {
                n: 20_000,
                hub_every: 30,
                max_chain: 3,
                chord_frac: 0.03,
            },
            1,
        );
        let s = GraphStats::compute(&g);
        assert!(s.pct_deg_le2 > 85.0, "%deg2 {}", s.pct_deg_le2);
        assert!(
            s.avg_degree > 1.8 && s.avg_degree < 2.6,
            "avg {}",
            s.avg_degree
        );
        let bridges = find_bridges(&g, &Counters::new());
        let pct = 100.0 * bridges.len() as f64 / g.num_edges() as f64;
        assert!(pct > 75.0, "%bridges {pct}");
    }

    #[test]
    fn c73_shape_bands() {
        let g = core_with_pendants(
            CorePendantParams {
                n: 20_000,
                core_frac: 0.52,
                core_degree: 11.0,
                max_chain: 2,
            },
            2,
        );
        let s = GraphStats::compute(&g);
        assert!(
            s.pct_deg_le2 > 35.0 && s.pct_deg_le2 < 65.0,
            "%deg2 {}",
            s.pct_deg_le2
        );
        assert!(
            s.avg_degree > 4.5 && s.avg_degree < 9.0,
            "avg {}",
            s.avg_degree
        );
        let bridges = find_bridges(&g, &Counters::new());
        let pct = 100.0 * bridges.len() as f64 / g.num_edges() as f64;
        assert!(pct > 5.0 && pct < 30.0, "%bridges {pct}");
    }

    #[test]
    fn hub_chains_connected_backbone() {
        let g = hub_and_chains(
            HubChainParams {
                n: 5_000,
                hub_every: 25,
                max_chain: 3,
                chord_frac: 0.0,
            },
            3,
        );
        // Pure tree/forest rooted in the hub path → single component.
        let c = sb_graph::components::components_sequential(&g, None);
        assert_eq!(c.count, 1);
        // A tree on n vertices has n−1 edges.
        assert_eq!(g.num_edges(), g.num_vertices() - 1);
    }

    #[test]
    fn deterministic_per_seed() {
        let p = HubChainParams {
            n: 2_000,
            hub_every: 20,
            max_chain: 3,
            chord_frac: 0.05,
        };
        assert_eq!(hub_and_chains(p, 4), hub_and_chains(p, 4));
        let q = CorePendantParams {
            n: 2_000,
            core_frac: 0.5,
            core_degree: 8.0,
            max_chain: 2,
        };
        assert_eq!(core_with_pendants(q, 4), core_with_pendants(q, 4));
    }
}
