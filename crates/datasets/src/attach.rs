//! Preferential-attachment graphs with a low-degree mixture — stand-ins for
//! the collaboration (`Cit-Patents`, `coAuthorsCiteseer`) and web
//! (`web-Google`, `webbase-1M`) classes.
//!
//! Plain Barabási–Albert gives a power-law tail but a minimum degree of `m`,
//! which would make %DEG2 zero; real citation/web graphs instead mix hubs
//! with a large population of barely-connected vertices. The generator
//! therefore attaches each newcomer with 1–2 edges with probability
//! `p_low`, and with `m_high` degree-proportional edges otherwise. Tuning
//! `(p_low, m_high)` hits each Table II row's (%DEG2, avg degree) pair.

use rand::{RngExt, SeedableRng};
use sb_graph::builder::GraphBuilder;
use sb_graph::csr::Graph;

/// Parameters for the attachment generator.
#[derive(Debug, Clone, Copy)]
pub struct AttachParams {
    /// Number of vertices.
    pub n: usize,
    /// Probability a newcomer is a low-degree vertex (1–2 edges).
    pub p_low: f64,
    /// Edge count for non-low newcomers.
    pub m_high: usize,
    /// Probability an endpoint is chosen uniformly instead of
    /// degree-proportionally (flattens the tail a little, web-graph style).
    pub uniform_mix: f64,
    /// When false, low-degree newcomers are kept out of the attachment pool,
    /// so they stay low-degree (the `webbase` shape, where 87% of vertices
    /// end with degree ≤ 2). When true they attract later edges like any
    /// other vertex (the citation-network shape).
    pub low_vertices_attract: bool,
}

/// Generate a preferential-attachment graph with a low-degree mixture.
pub fn attach_graph(p: AttachParams, seed: u64) -> Graph {
    let AttachParams {
        n,
        p_low,
        m_high,
        uniform_mix,
        low_vertices_attract,
    } = p;
    assert!(m_high >= 1);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let m0 = (m_high + 2).min(n);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    // `endpoints` holds one entry per edge endpoint → sampling from it is
    // degree-proportional.
    let mut endpoints: Vec<u32> = Vec::new();
    // Seed core: a path on m0 vertices.
    for v in 1..m0 {
        edges.push((v as u32 - 1, v as u32));
        endpoints.push(v as u32 - 1);
        endpoints.push(v as u32);
    }
    for v in m0..n {
        let is_low = rng.random_bool(p_low);
        let k = if is_low {
            // Mostly single attachments (these become bridges — webbase's
            // 38% bridge share comes from exactly such leaves).
            1 + usize::from(rng.random_bool(0.25))
        } else {
            m_high
        };
        for _ in 0..k {
            let target = if endpoints.is_empty() || rng.random_bool(uniform_mix) {
                rng.random_range(0..v) as u32
            } else {
                endpoints[rng.random_range(0..endpoints.len())]
            };
            if target != v as u32 {
                edges.push((v as u32, target));
                // The target always gains attractiveness; the newcomer only
                // enters the pool if low vertices are allowed to attract.
                endpoints.push(target);
                if !is_low || low_vertices_attract {
                    endpoints.push(v as u32);
                }
            }
        }
    }
    GraphBuilder::new(n).edges(edges).build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_graph::stats::GraphStats;

    #[test]
    fn citation_shape() {
        // Cit-Patents row: avg degree ≈ 8.8, %DEG2 ≈ 28.
        let g = attach_graph(
            AttachParams {
                n: 20_000,
                p_low: 0.32,
                m_high: 6,
                uniform_mix: 0.1,
                low_vertices_attract: true,
            },
            1,
        );
        let s = GraphStats::compute(&g);
        assert!(
            s.avg_degree > 6.0 && s.avg_degree < 11.0,
            "avg {}",
            s.avg_degree
        );
        assert!(
            s.pct_deg_le2 > 15.0 && s.pct_deg_le2 < 45.0,
            "%deg2 {}",
            s.pct_deg_le2
        );
    }

    #[test]
    fn webbase_shape_mostly_low_degree() {
        // webbase-1M row: avg degree ≈ 4.2, %DEG2 ≈ 87.
        let g = attach_graph(
            AttachParams {
                n: 20_000,
                p_low: 0.88,
                m_high: 12,
                uniform_mix: 0.05,
                low_vertices_attract: false,
            },
            2,
        );
        let s = GraphStats::compute(&g);
        assert!(
            s.pct_deg_le2 > 60.0,
            "%deg2 {} should be dominated by low-degree vertices",
            s.pct_deg_le2
        );
        assert!(s.avg_degree < 6.5, "avg {}", s.avg_degree);
    }

    #[test]
    fn has_power_law_head() {
        let g = attach_graph(
            AttachParams {
                n: 10_000,
                p_low: 0.3,
                m_high: 5,
                uniform_mix: 0.0,
                low_vertices_attract: true,
            },
            3,
        );
        let s = GraphStats::compute(&g);
        assert!(
            s.max_degree as f64 > 10.0 * s.avg_degree,
            "hubs expected: max {} avg {}",
            s.max_degree,
            s.avg_degree
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let p = AttachParams {
            n: 3_000,
            p_low: 0.4,
            m_high: 4,
            uniform_mix: 0.1,
            low_vertices_attract: true,
        };
        assert_eq!(attach_graph(p, 7), attach_graph(p, 7));
    }

    #[test]
    fn tiny_n_handled() {
        let g = attach_graph(
            AttachParams {
                n: 3,
                p_low: 0.5,
                m_high: 2,
                uniform_mix: 0.0,
                low_vertices_attract: true,
            },
            1,
        );
        g.validate().unwrap();
        assert_eq!(g.num_vertices(), 3);
    }
}
