//! Frequency assignment on a road network.
//!
//! Roadside units along a road network must broadcast on channels distinct
//! from their neighbors'. Road graphs are exactly the shape where the
//! paper's COLOR-Deg2 wins on the CPU: most vertices are degree-2 polyline
//! points, so after coloring the (small) high-degree junction core, the
//! rest is colored with a 3-entry FORBIDDEN window.
//!
//! ```sh
//! cargo run --release --example road_coloring
//! ```

use std::time::Instant;
use symmetry_breaking::prelude::*;

fn main() {
    let g = generate(GraphId::GermanyOsm, Scale::Factor(0.5), 7);
    let stats = GraphStats::compute(&g);
    println!(
        "road network: |V| = {}, |E| = {}, {:.1}% of vertices have degree ≤ 2",
        stats.num_vertices, stats.num_edges, stats.pct_deg_le2
    );

    // Decomposition view: how small is the junction core?
    let d = decompose_degk(&g, 2, &Counters::new());
    println!(
        "DEG2 split: {} junction vertices carry {} edges; {} polyline vertices carry {} edges ({} cross)",
        d.high_vertices().len(),
        d.m_high,
        d.low_vertices().len(),
        d.m_low,
        d.m_cross
    );

    let t = Instant::now();
    let base = vertex_coloring(&g, ColorAlgorithm::Baseline, Arch::Cpu, 1);
    let base_ms = t.elapsed().as_secs_f64() * 1e3;
    check_coloring(&g, &base.color).unwrap();

    let t = Instant::now();
    let degk = vertex_coloring(&g, ColorAlgorithm::Degk { k: 2 }, Arch::Cpu, 1);
    let degk_ms = t.elapsed().as_secs_f64() * 1e3;
    check_coloring(&g, &degk.color).unwrap();

    println!(
        "\nVB baseline : {base_ms:>8.2} ms, {} channels",
        base.num_colors()
    );
    println!(
        "COLOR-Deg2  : {degk_ms:>8.2} ms, {} channels ({:.0} ms decomposition + {:.0} ms solve)",
        degk.num_colors(),
        degk.stats.decompose_time.as_secs_f64() * 1e3,
        degk.stats.solve_time.as_secs_f64() * 1e3,
    );
    println!(
        "speedup     : {:.2}x (paper: 1.27x average on CPUs)",
        base_ms / degk_ms
    );

    // Channel usage histogram for the curious.
    let mut per_channel = vec![0usize; degk.num_colors()];
    for &c in &degk.color {
        per_channel[c as usize] += 1;
    }
    println!("\nchannel loads: {per_channel:?}");
}
