//! Network reliability triage with the BICC decomposition.
//!
//! In an infrastructure network, an *articulation vertex* is a single point
//! of failure (its loss disconnects the network) and a *bridge* is a single
//! link of failure. The block–cut tree shows how the network decomposes at
//! those weak points. This drives the Hochbaum-style decomposition
//! machinery (`sb_decompose::bicc`) that also powers the `*-Bicc`
//! extension solvers.
//!
//! ```sh
//! cargo run --release --example network_reliability
//! ```

use std::time::Instant;
use symmetry_breaking::decompose::{decompose_bicc, decompose_bridge};
use symmetry_breaking::prelude::*;

fn main() {
    // A road network: the classic shape where single points of failure
    // dominate (dead ends, long polylines between junctions).
    let g = generate(GraphId::RoadCentral, Scale::Factor(0.5), 13);
    println!(
        "network: {} nodes, {} links",
        g.num_vertices(),
        g.num_edges()
    );

    let t = Instant::now();
    let bicc = decompose_bicc(&g, &Counters::new());
    let bicc_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let bridges = decompose_bridge(&g, &Counters::new());
    let bridge_ms = t.elapsed().as_secs_f64() * 1e3;

    let cuts = bicc.articulation_points();
    println!(
        "\nsingle points of failure : {} articulation nodes ({:.1}% of nodes) [{bicc_ms:.1} ms]",
        cuts.len(),
        100.0 * cuts.len() as f64 / g.num_vertices() as f64
    );
    println!(
        "single links of failure  : {} bridges ({:.1}% of links) [{bridge_ms:.1} ms]",
        bridges.bridges.len(),
        100.0 * bridges.bridges.len() as f64 / g.num_edges() as f64
    );
    println!(
        "resilient blocks         : {} (largest carries {} links)",
        bicc.num_blocks,
        largest_block(&bicc)
    );

    // The block-cut tree: its leaves are blocks that hang off a single
    // articulation vertex — the "peripheral" parts of the network.
    let tree = bicc.block_cut_tree(&g);
    let mut degree_of_block = vec![0usize; bicc.num_blocks];
    for &(b, _) in &tree {
        degree_of_block[b as usize] += 1;
    }
    let leaves = degree_of_block.iter().filter(|&&d| d == 1).count();
    println!(
        "block-cut tree           : {} attachment edges, {} leaf blocks",
        tree.len(),
        leaves
    );

    // Sanity: every bridge must be a singleton block.
    for &e in bridges.bridges.iter().take(1000) {
        let b = bicc.edge_block[e as usize];
        assert_eq!(
            bicc.block_edges(b).len(),
            1,
            "bridge {e} must form its own block"
        );
    }
    println!("\ninvariant checked: every bridge is a singleton block ✓");

    // The same decomposition drives the extension solvers:
    let run = maximal_independent_set(&g, MisAlgorithm::Bicc, Arch::Cpu, 5);
    check_maximal_independent_set(&g, &run.in_set).unwrap();
    println!(
        "MIS-Bicc: {} facility sites selected in {:.1} ms — verified",
        run.size(),
        run.stats.total_ms()
    );
}

fn largest_block(b: &symmetry_breaking::decompose::BiccDecomposition) -> usize {
    let mut counts = vec![0usize; b.num_blocks];
    for &x in &b.edge_block {
        counts[x as usize] += 1;
    }
    counts.into_iter().max().unwrap_or(0)
}
