//! Conflict-free job scheduling via repeated MIS.
//!
//! Jobs that share a resource cannot run in the same round; scheduling is
//! repeated maximal-independent-set extraction on the conflict graph (each
//! MIS is one execution wave). This is the classic MIS application the
//! paper's §V cites (scheduling, work distribution), here on a
//! collaboration-shaped conflict graph.
//!
//! ```sh
//! cargo run --release --example scheduling_mis
//! ```

use std::time::Instant;
use symmetry_breaking::graph::subgraph::induce_vertices_same_ids;
use symmetry_breaking::prelude::*;

/// Peel the conflict graph wave by wave; returns the wave of each job.
fn schedule(g: &Graph, algo: MisAlgorithm, seed: u64) -> Vec<u32> {
    let n = g.num_vertices();
    let mut wave = vec![u32::MAX; n];
    let mut remaining: Vec<bool> = vec![true; n];
    let mut left = n;
    let mut round = 0u32;
    let mut current = g.clone();
    while left > 0 {
        let run = maximal_independent_set(&current, algo, Arch::Cpu, seed + round as u64);
        check_maximal_independent_set(&current, &run.in_set).unwrap();
        for v in 0..n {
            if remaining[v] && run.in_set[v] {
                wave[v] = round;
                remaining[v] = false;
                left -= 1;
            }
        }
        // Jobs already scheduled leave the conflict graph.
        current = induce_vertices_same_ids(&current, |v| remaining[v as usize]);
        round += 1;
    }
    wave
}

fn main() {
    let g = generate(GraphId::CoAuthorsCiteseer, Scale::Factor(0.3), 11);
    println!(
        "conflict graph: {} jobs, {} conflicts, max degree {}",
        g.num_vertices(),
        g.num_edges(),
        g.max_degree()
    );

    for (algo, label) in [
        (MisAlgorithm::Baseline, "LubyMIS  "),
        (MisAlgorithm::Degk { k: 2 }, "MIS-Deg2 "),
    ] {
        let t = Instant::now();
        let wave = schedule(&g, algo, 3);
        let ms = t.elapsed().as_secs_f64() * 1e3;
        let waves = wave.iter().max().unwrap() + 1;
        // Validate: no conflicting pair shares a wave.
        for &[u, v] in g.edge_list() {
            assert_ne!(wave[u as usize], wave[v as usize], "conflict within a wave");
        }
        let first_wave = wave.iter().filter(|&&w| w == 0).count();
        println!(
            "{label}: schedule of {waves} waves in {ms:>8.2} ms ({first_wave} jobs in wave 0)"
        );
    }
    println!("\nschedules verified: no two conflicting jobs share a wave ✓");
}
