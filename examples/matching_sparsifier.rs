//! Multilevel graph coarsening via maximal matching.
//!
//! Multilevel partitioners (the paper's §III cites matching's role in
//! partitioning [15]) coarsen a graph by computing a maximal matching and
//! contracting every matched pair. This example builds the full coarsening
//! hierarchy with MM-Rand and reports the shrink rate per level.
//!
//! ```sh
//! cargo run --release --example matching_sparsifier
//! ```

use std::time::Instant;
use symmetry_breaking::prelude::*;

/// Contract matched pairs; unmatched vertices survive alone.
fn contract(g: &Graph, mate: &[u32]) -> Graph {
    let n = g.num_vertices();
    // Supervertex id: the smaller endpoint of a matched pair, else self.
    let mut super_of = vec![0u32; n];
    let mut next = 0u32;
    for v in 0..n as u32 {
        let m = mate[v as usize];
        if m == INVALID || v < m {
            super_of[v as usize] = next;
            next += 1;
        }
    }
    for v in 0..n as u32 {
        let m = mate[v as usize];
        if m != INVALID && m < v {
            super_of[v as usize] = super_of[m as usize];
        }
    }
    let mut b = GraphBuilder::new(next as usize);
    for &[u, v] in g.edge_list() {
        let (su, sv) = (super_of[u as usize], super_of[v as usize]);
        if su != sv {
            b.push(su, sv);
        }
    }
    b.build()
}

fn main() {
    let mut g = generate(GraphId::Rgg23, Scale::Factor(0.3), 5);
    println!(
        "level 0: |V| = {}, |E| = {}",
        g.num_vertices(),
        g.num_edges()
    );

    let t = Instant::now();
    let mut level = 0;
    while g.num_vertices() > 200 && level < 20 {
        let run = maximal_matching(&g, MmAlgorithm::Rand { partitions: 10 }, Arch::Cpu, level);
        check_maximal_matching(&g, &run.mate).unwrap();
        let matched = matching_cardinality(&run.mate);
        let coarse = contract(&g, &run.mate);
        level += 1;
        println!(
            "level {level}: matched {matched} pairs → |V| = {}, |E| = {} ({:.1}% shrink)",
            coarse.num_vertices(),
            coarse.num_edges(),
            100.0 * (1.0 - coarse.num_vertices() as f64 / g.num_vertices() as f64)
        );
        if coarse.num_vertices() == g.num_vertices() {
            break; // nothing left to contract
        }
        g = coarse;
    }
    println!(
        "\ncoarsening hierarchy of {level} levels built in {:.1} ms",
        t.elapsed().as_secs_f64() * 1e3
    );
}
