//! Register allocation by interference-graph coloring.
//!
//! The classic compiler application of vertex coloring: virtual registers
//! whose live ranges overlap interfere and need distinct physical
//! registers. Live ranges are intervals, so the interference graph is an
//! interval graph; colors beyond the machine's register count are spills.
//!
//! ```sh
//! cargo run --release --example register_allocation
//! ```

use rand::{RngExt, SeedableRng};
use std::time::Instant;
use symmetry_breaking::prelude::*;

const MACHINE_REGS: u32 = 16;

/// Synthesize live ranges for a long straight-line function and build the
/// interval interference graph.
fn interference_graph(ranges: usize, seed: u64) -> (Graph, Vec<(u32, u32)>) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let program_len = ranges as u32 * 4;
    let mut intervals: Vec<(u32, u32)> = (0..ranges)
        .map(|_| {
            let start = rng.random_range(0..program_len);
            // Mostly short temporaries, a few long-lived values.
            let len = if rng.random_bool(0.9) {
                rng.random_range(1..12)
            } else {
                rng.random_range(50..400)
            };
            (start, (start + len).min(program_len))
        })
        .collect();
    intervals.sort_unstable();
    // Sweep to collect overlaps.
    let mut edges = Vec::new();
    for i in 0..intervals.len() {
        let (_, end_i) = intervals[i];
        for (j, &(start_j, _)) in intervals.iter().enumerate().skip(i + 1) {
            if start_j >= end_i {
                break;
            }
            edges.push((i as u32, j as u32));
        }
    }
    (from_edge_list(ranges, &edges), intervals)
}

fn main() {
    let (g, _intervals) = interference_graph(30_000, 99);
    println!(
        "interference graph: {} live ranges, {} interferences, max pressure ≥ {}",
        g.num_vertices(),
        g.num_edges(),
        g.max_degree() + 1
    );

    for (algo, label) in [
        (ColorAlgorithm::Baseline, "VB baseline"),
        (ColorAlgorithm::Degk { k: 2 }, "COLOR-Deg2 "),
        (ColorAlgorithm::Rand { partitions: 2 }, "COLOR-Rand "),
    ] {
        let t = Instant::now();
        let run = vertex_coloring(&g, algo, Arch::Cpu, 3);
        let ms = t.elapsed().as_secs_f64() * 1e3;
        check_coloring(&g, &run.color).unwrap();
        let spilled = run.color.iter().filter(|&&c| c >= MACHINE_REGS).count();
        println!(
            "{label}: {ms:>8.2} ms, {} colors, {spilled} ranges spilled past {MACHINE_REGS} regs",
            run.num_colors()
        );
    }
}
