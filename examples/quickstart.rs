//! Quickstart: run all three symmetry-breaking problems on a small graph
//! with and without decomposition, and verify every answer.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use symmetry_breaking::prelude::*;

fn main() {
    // A Table II stand-in at test scale: the lp1 shape (chains off hubs),
    // where decomposition pays off most.
    let g = generate(GraphId::Lp1, Scale::Tiny, 42);
    println!(
        "graph: lp1 stand-in, |V| = {}, |E| = {}, avg degree = {:.2}",
        g.num_vertices(),
        g.num_edges(),
        g.avg_degree()
    );

    for arch in [Arch::Cpu, Arch::GpuSim] {
        println!("\n=== {arch} ===");

        // Maximal matching: baseline vs MM-Rand.
        let base = maximal_matching(&g, MmAlgorithm::Baseline, arch, 1);
        check_maximal_matching(&g, &base.mate).unwrap();
        let rand = maximal_matching(&g, MmAlgorithm::Rand { partitions: 10 }, arch, 1);
        check_maximal_matching(&g, &rand.mate).unwrap();
        println!(
            "matching   baseline {:>8.2} ms ({} rounds) | MM-Rand {:>8.2} ms ({} rounds), {} edges",
            base.stats.total_ms(),
            base.stats.counters.rounds,
            rand.stats.total_ms(),
            rand.stats.counters.rounds,
            rand.cardinality(),
        );

        // Coloring: baseline vs COLOR-Deg2.
        let base = vertex_coloring(&g, ColorAlgorithm::Baseline, arch, 1);
        check_coloring(&g, &base.color).unwrap();
        let degk = vertex_coloring(&g, ColorAlgorithm::Degk { k: 2 }, arch, 1);
        check_coloring(&g, &degk.color).unwrap();
        println!(
            "coloring   baseline {:>8.2} ms ({} colors) | COLOR-Deg2 {:>8.2} ms ({} colors)",
            base.stats.total_ms(),
            base.num_colors(),
            degk.stats.total_ms(),
            degk.num_colors(),
        );

        // MIS: LubyMIS vs MIS-Deg2.
        let base = maximal_independent_set(&g, MisAlgorithm::Baseline, arch, 1);
        check_maximal_independent_set(&g, &base.in_set).unwrap();
        let degk = maximal_independent_set(&g, MisAlgorithm::Degk { k: 2 }, arch, 1);
        check_maximal_independent_set(&g, &degk.in_set).unwrap();
        println!(
            "mis        LubyMIS  {:>8.2} ms ({} rounds) | MIS-Deg2 {:>8.2} ms, |I| = {}",
            base.stats.total_ms(),
            base.stats.counters.rounds,
            degk.stats.total_ms(),
            degk.size(),
        );
    }

    println!("\nall solutions verified ✓");
}
