//! Out-of-core integration: the `.sbg` loader's typed rejections, the
//! mapped-vs-heap solver-output identity the format promises, the
//! `sbreak convert` CLI round trip, and the engine's mapped-graph cache
//! behavior (identity fingerprints, header-only weights, one shared
//! mapping per source).

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use symmetry_breaking::graph::sbg::{self, SbgError};
use symmetry_breaking::prelude::*;

/// Fresh per-test scratch directory (tests run concurrently; names must
/// not collide across the binary).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sbreak-outofcore-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn test_graph() -> Graph {
    generate(GraphId::Lp1, Scale::Tiny, 11)
}

fn write_test_sbg(dir: &Path, g: &Graph) -> PathBuf {
    let path = dir.join("g.sbg");
    write_sbg(g, None, &path).unwrap();
    path
}

// ---------------------------------------------------------------- loader

#[test]
fn truncated_files_are_rejected_with_typed_errors() {
    let dir = scratch("trunc");
    let g = test_graph();
    let path = write_test_sbg(&dir, &g);
    let full = fs::read(&path).unwrap();

    // Shorter than the header, mid-section, and one byte short: all
    // Truncated, never a panic or a partial graph.
    for cut in [0, 7, 63, 64, full.len() / 2, full.len() - 1] {
        fs::write(&path, &full[..cut]).unwrap();
        match map_sbg(&path) {
            Err(SbgError::Truncated { expected, found }) => {
                assert_eq!(found, cut as u64);
                assert!(expected > found, "cut at {cut}");
            }
            other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
        }
    }
}

#[test]
fn bad_magic_version_and_endianness_are_distinguished() {
    let dir = scratch("hdr");
    let g = test_graph();
    let path = write_test_sbg(&dir, &g);
    let full = fs::read(&path).unwrap();

    let mut bad = full.clone();
    bad[0] = b'X';
    fs::write(&path, &bad).unwrap();
    assert!(matches!(map_sbg(&path), Err(SbgError::BadMagic)));

    let mut bad = full.clone();
    bad[8..12].copy_from_slice(&99u32.to_le_bytes());
    fs::write(&path, &bad).unwrap();
    assert!(matches!(
        map_sbg(&path),
        Err(SbgError::Version { found: 99 })
    ));

    // The BOM written by the opposite endianness reads back byte-swapped.
    let mut bad = full.clone();
    bad[12..16].copy_from_slice(&sbg::BOM.to_be_bytes());
    fs::write(&path, &bad).unwrap();
    assert!(matches!(
        map_sbg(&path),
        Err(SbgError::Endianness { found }) if found == sbg::BOM.swap_bytes()
    ));

    let mut bad = full.clone();
    bad[32..40].copy_from_slice(&0x80u64.to_le_bytes()); // unknown flag bit
    fs::write(&path, &bad).unwrap();
    assert!(matches!(map_sbg(&path), Err(SbgError::Corrupt(_))));
}

#[test]
fn corrupt_offsets_are_rejected() {
    let dir = scratch("offs");
    let g = test_graph();
    let path = write_test_sbg(&dir, &g);
    let full = fs::read(&path).unwrap();
    let m2 = 2 * g.num_edges() as u64;

    // Non-monotone offsets (decreasing run).
    let mut bad = full.clone();
    bad[sbg::HEADER_LEN + 8..sbg::HEADER_LEN + 16].copy_from_slice(&m2.to_le_bytes());
    fs::write(&path, &bad).unwrap();
    match map_sbg(&path) {
        Err(SbgError::Corrupt(msg)) => assert!(msg.contains("offset"), "got: {msg}"),
        other => panic!("expected Corrupt, got {other:?}"),
    }

    // Final offset points past the neighbor section.
    let mut bad = full.clone();
    let last = sbg::HEADER_LEN + 8 * g.num_vertices();
    bad[last..last + 8].copy_from_slice(&(m2 + 1).to_le_bytes());
    fs::write(&path, &bad).unwrap();
    assert!(matches!(map_sbg(&path), Err(SbgError::Corrupt(_))));

    // Trailing garbage after the last section.
    let mut bad = full.clone();
    bad.extend_from_slice(&[0u8; 16]);
    fs::write(&path, &bad).unwrap();
    match map_sbg(&path) {
        Err(SbgError::Corrupt(msg)) => assert!(msg.contains("trailing"), "got: {msg}"),
        other => panic!("expected Corrupt(trailing), got {other:?}"),
    }
}

#[test]
fn empty_and_non_sbg_files_are_rejected() {
    let dir = scratch("empty");
    let path = dir.join("not.sbg");
    fs::write(&path, b"").unwrap();
    assert!(matches!(map_sbg(&path), Err(SbgError::Truncated { .. })));
    fs::write(&path, b"1 2\n3 4\n").unwrap();
    assert!(matches!(
        map_sbg(&path),
        Err(SbgError::BadMagic) | Err(SbgError::Truncated { .. })
    ));
    assert!(matches!(
        map_sbg(&dir.join("missing.sbg")),
        Err(SbgError::Io(_))
    ));
}

// ------------------------------------------------- mapped/heap identity

/// The core property of the format: a solver cannot observe whether the
/// CSR arrays live on the heap or in a read-only mapping. Every family,
/// thread count, and frontier mode must produce byte-identical labels.
#[test]
fn mapped_solver_outputs_are_byte_identical_to_heap() {
    let dir = scratch("ident");
    let heap = test_graph();
    let path = write_test_sbg(&dir, &heap);
    let mapped = map_sbg(&path).unwrap();
    assert_eq!(mapped, heap, "round trip must be lossless");
    assert!(mapped.mapped_ident().is_some() || std::env::var_os("SBREAK_NO_MMAP").is_some());

    for threads in [1usize, 4] {
        for mode in [
            FrontierMode::Dense,
            FrontierMode::Compact,
            FrontierMode::Bitset,
        ] {
            let opts = SolveOpts::with_mode(mode);
            symmetry_breaking::par::exec::with_threads(threads, || {
                let a = maximal_matching_opts(&heap, MmAlgorithm::Baseline, Arch::Cpu, 3, &opts);
                let b = maximal_matching_opts(&mapped, MmAlgorithm::Baseline, Arch::Cpu, 3, &opts);
                assert_eq!(a.mate, b.mate, "GM t={threads} mode={mode:?}");

                let a = maximal_independent_set_opts(
                    &heap,
                    MisAlgorithm::Baseline,
                    Arch::Cpu,
                    3,
                    &opts,
                );
                let b = maximal_independent_set_opts(
                    &mapped,
                    MisAlgorithm::Baseline,
                    Arch::Cpu,
                    3,
                    &opts,
                );
                assert_eq!(a.in_set, b.in_set, "Luby t={threads} mode={mode:?}");

                let a = vertex_coloring_opts(&heap, ColorAlgorithm::Baseline, Arch::Cpu, 3, &opts);
                let b =
                    vertex_coloring_opts(&mapped, ColorAlgorithm::Baseline, Arch::Cpu, 3, &opts);
                assert_eq!(a.color, b.color, "JP t={threads} mode={mode:?}");
            });
        }
    }
}

#[test]
fn renumber_permutation_round_trips_through_the_file() {
    let dir = scratch("perm");
    let g = test_graph();
    let (renum, perm) = renumber_by_degree(&g);
    let path = dir.join("r.sbg");
    write_sbg(&renum, Some(&perm), &path).unwrap();

    let mapped = map_sbg(&path).unwrap();
    assert_eq!(mapped, renum);
    let stored: Vec<u32> = read_sbg_perm(&path).unwrap().expect("perm must be stored");
    assert_eq!(stored, perm);
    if let Some(attached) = mapped.renumber_perm() {
        assert_eq!(attached, &perm[..]);
    }

    // Labels computed on the renumbered graph map back to original ids.
    let run = vertex_coloring_opts(
        &mapped,
        ColorAlgorithm::Baseline,
        Arch::Cpu,
        3,
        &SolveOpts::default(),
    );
    let back = unpermute_labels(&run.color, &stored);
    check_coloring(&g, &back).unwrap();
}

// ------------------------------------------------------------------ CLI

fn sbreak(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_sbreak"))
        .args(args)
        .output()
        .expect("sbreak must run")
}

fn expect_ok(out: &Output) -> String {
    assert!(
        out.status.success(),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn cli_convert_round_trip_solves_byte_identically() {
    let dir = scratch("cli");
    let edges = dir.join("g.edges");
    let bin = dir.join("g.sbg");
    let sol_heap = dir.join("heap.txt");
    let sol_mapped = dir.join("mapped.txt");

    expect_ok(&sbreak(&[
        "generate",
        "lp1",
        "--scale",
        "0.1",
        "--seed",
        "5",
        "-o",
        edges.to_str().unwrap(),
    ]));
    let out = expect_ok(&sbreak(&[
        "convert",
        edges.to_str().unwrap(),
        bin.to_str().unwrap(),
    ]));
    assert!(out.contains("wrote"), "got: {out}");

    for (input, sol) in [(&edges, &sol_heap), (&bin, &sol_mapped)] {
        expect_ok(&sbreak(&[
            "solve",
            input.to_str().unwrap(),
            "--problem",
            "mm",
            "--seed",
            "1",
            "-o",
            sol.to_str().unwrap(),
        ]));
    }
    assert_eq!(
        fs::read(&sol_heap).unwrap(),
        fs::read(&sol_mapped).unwrap(),
        "mapped solve must render byte-identically to heap solve"
    );
}

#[test]
fn cli_convert_renumber_stores_a_bijection() {
    let dir = scratch("clir");
    let bin = dir.join("r.sbg");
    let out = expect_ok(&sbreak(&[
        "convert",
        "gen:lp1",
        bin.to_str().unwrap(),
        "--scale",
        "0.1",
        "--seed",
        "5",
        "--renumber",
        "degree",
    ]));
    assert!(out.contains("degree-renumbered"), "got: {out}");

    let g = map_sbg(&bin).unwrap();
    let perm = read_sbg_perm(&bin).unwrap().expect("perm stored");
    assert_eq!(perm.len(), g.num_vertices());
    let mut seen = vec![false; perm.len()];
    for &old in &perm {
        assert!(!std::mem::replace(&mut seen[old as usize], true));
    }
    // Degree order: new id 0 has the maximum degree.
    let d0 = g.degree(0);
    assert!((0..g.num_vertices() as u32).all(|v| g.degree(v) <= d0));

    // Unknown modes are rejected, not silently ignored.
    let bad = sbreak(&[
        "convert",
        "gen:lp1",
        bin.to_str().unwrap(),
        "--renumber",
        "banana",
    ]);
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("banana"));
}

// --------------------------------------------------------------- engine

#[test]
fn engine_shares_one_mapping_and_charges_header_weight() {
    let dir = scratch("engine");
    let heap = test_graph();
    let path = write_test_sbg(&dir, &heap);
    let src = GraphSource::File(path.clone());

    let mut engine = Engine::with_cap(4);
    let (g1, fp1, cached1) = engine.graph(&src).unwrap();
    let (g2, fp2, cached2) = engine.graph(&src).unwrap();
    assert!(!cached1);
    assert!(cached2, "second load of the same source must hit the cache");
    assert!(std::sync::Arc::ptr_eq(&g1, &g2), "one shared mapping");
    assert_eq!(fp1, fp2);

    // A mapped graph charges the cache its struct header, not the array
    // payload: the bytes belong to the page cache.
    if g1.mapped_ident().is_some() {
        assert!(
            g1.resident_bytes() < 4096,
            "mapped resident_bytes = {} — should be header-only",
            g1.resident_bytes()
        );
        assert!(heap.resident_bytes() > g1.resident_bytes());
        // Identity fingerprints are domain-separated from content hashes.
        assert_ne!(
            fp1,
            symmetry_breaking::engine::fingerprint_graph(
                &heap,
                symmetry_breaking::engine::fingerprint::DEFAULT_SEED
            )
        );
    }

    // Rewriting the file changes its identity, so a fresh engine keys the
    // new contents away from the old fingerprint.
    let sub = from_edge_list(3, &[(0, 1), (1, 2)]);
    write_sbg(&sub, None, &path).unwrap();
    let mut fresh = Engine::with_cap(4);
    let (g3, fp3, _) = fresh.graph(&src).unwrap();
    assert_ne!(*g3, *g1);
    assert_ne!(fp3, fp1, "rewritten file must not reuse the old key");
}

#[test]
fn edit_fingerprints_on_mapped_graphs_are_identity_keyed() {
    use symmetry_breaking::engine::fingerprint::DEFAULT_SEED;
    use symmetry_breaking::engine::{fingerprint_graph, fingerprint_with_edits};

    let dir = scratch("editfp");
    let heap = test_graph();
    let path = write_test_sbg(&dir, &heap);
    let mapped = map_sbg(&path).unwrap();
    if mapped.mapped_ident().is_none() {
        return; // identity metadata unavailable on this platform
    }

    let mut log = EditLog::new();
    log.add_edge(0, 1).remove_edge(1, 2).add_vertex(99);

    // Deterministic across independent mappings of the same file.
    let fp = fingerprint_with_edits(&mapped, &log, DEFAULT_SEED);
    let remapped = map_sbg(&path).unwrap();
    assert_eq!(fp, fingerprint_with_edits(&remapped, &log, DEFAULT_SEED));

    // Domain-separated from the heap twin with identical content, and
    // from the unedited base / other logs.
    assert_ne!(fp, fingerprint_with_edits(&heap, &log, DEFAULT_SEED));
    assert_ne!(fp, fingerprint_graph(&mapped, DEFAULT_SEED));
    assert_eq!(
        fingerprint_with_edits(&mapped, &EditLog::new(), DEFAULT_SEED),
        fingerprint_graph(&mapped, DEFAULT_SEED),
        "an empty log must degenerate to the base fingerprint"
    );

    // O(1) pin: the mapped branch hashes file identity (dev, ino, size,
    // mtime) plus (n, m) — never the multi-GB payload. Rewrite the
    // payload in place with a different same-shape graph and restore the
    // recorded mtime: every identity word is unchanged, so the
    // fingerprint must not move — proof the edge arrays are never read.
    let mtime = fs::metadata(&path).unwrap().modified().unwrap();
    let mut twisted: Vec<(u32, u32)> = heap
        .edge_list()
        .iter()
        .map(|&[u, v]| (u.min(v), u.max(v)))
        .collect();
    let spare = (0..heap.num_vertices() as u32)
        .flat_map(|a| ((a + 1)..heap.num_vertices() as u32).map(move |b| (a, b)))
        .find(|&(a, b)| !heap.has_edge(a, b))
        .expect("test graph is not complete");
    twisted[0] = spare;
    let twin = from_edge_list(heap.num_vertices(), &twisted);
    assert_eq!(twin.num_edges(), heap.num_edges(), "same-shape rewrite");
    assert_ne!(twin, heap, "content must actually differ");
    let old_size = fs::metadata(&path).unwrap().len();
    write_sbg(&twin, None, &path).unwrap();
    assert_eq!(fs::metadata(&path).unwrap().len(), old_size);
    fs::OpenOptions::new()
        .write(true)
        .open(&path)
        .unwrap()
        .set_modified(mtime)
        .unwrap();
    let rewritten = map_sbg(&path).unwrap();
    assert_eq!(rewritten, twin, "payload really changed on disk");
    assert_eq!(
        fp,
        fingerprint_with_edits(&rewritten, &log, DEFAULT_SEED),
        "identity unchanged -> fingerprint unchanged (payload never hashed)"
    );
}
