//! Property-based tests (proptest) over arbitrary graphs: the invariants
//! every solver and decomposition must hold regardless of input shape.

use proptest::prelude::*;
use symmetry_breaking::prelude::*;

/// Strategy: an arbitrary undirected graph with up to `nmax` vertices and
/// `mmax` raw edges (dedup may shrink).
fn arb_graph(nmax: usize, mmax: usize) -> impl Strategy<Value = Graph> {
    (2..nmax).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..mmax)
            .prop_map(move |edges| from_edge_list(n, &edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn csr_handshake_and_validation(g in arb_graph(120, 400)) {
        g.validate().unwrap();
        let degsum: usize = g.vertices().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degsum, 2 * g.num_edges());
    }

    #[test]
    fn bridges_agree_with_sequential_reference(g in arb_graph(80, 160)) {
        let fast = symmetry_breaking::decompose::bridge::find_bridges(&g, &Counters::new());
        let slow = symmetry_breaking::decompose::bridge::bridges_sequential(&g);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn bridge_removal_increases_components_per_bridge(g in arb_graph(60, 120)) {
        // Removing all bridges adds exactly one component per bridge.
        use symmetry_breaking::graph::components::components_sequential;
        let d = decompose_bridge(&g, &Counters::new());
        let before = components_sequential(&g, None).count;
        let after = components_sequential(&g, Some(&|e: u32| !d.is_bridge(e))).count;
        prop_assert_eq!(after, before + d.bridges.len());
    }

    #[test]
    fn rand_partition_laws(g in arb_graph(100, 300), k in 1usize..8, seed in 0u64..50) {
        let d = decompose_rand(&g, k, seed, &Counters::new());
        prop_assert_eq!(d.part.len(), g.num_vertices());
        prop_assert!(d.part.iter().all(|&p| (p as usize) < k));
        prop_assert_eq!(d.m_induced + d.m_cross, g.num_edges());
        for &[u, v] in d.cross_graph(&g).edge_list() {
            prop_assert_ne!(d.part[u as usize], d.part[v as usize]);
        }
    }

    #[test]
    fn degk_partition_laws(g in arb_graph(100, 300), k in 0usize..6) {
        let d = decompose_degk(&g, k, &Counters::new());
        prop_assert_eq!(d.m_high + d.m_low + d.m_cross, g.num_edges());
        prop_assert!(d.low_graph(&g).max_degree() <= k);
        for v in g.vertices() {
            prop_assert_eq!(d.is_high[v as usize], g.degree(v) > k);
        }
    }

    #[test]
    fn matchings_always_maximal(g in arb_graph(90, 250), seed in 0u64..20) {
        for algo in [
            MmAlgorithm::Baseline,
            MmAlgorithm::Bridge,
            MmAlgorithm::Rand { partitions: 3 },
            MmAlgorithm::Degk { k: 2 },
        ] {
            for arch in [Arch::Cpu, Arch::GpuSim] {
                let run = maximal_matching(&g, algo, arch, seed);
                check_maximal_matching(&g, &run.mate)
                    .map_err(|e| TestCaseError::fail(format!("{algo:?} {arch}: {e}")))?;
            }
        }
    }

    #[test]
    fn colorings_always_proper(g in arb_graph(90, 250), seed in 0u64..20) {
        for algo in [
            ColorAlgorithm::Baseline,
            ColorAlgorithm::Bridge,
            ColorAlgorithm::Rand { partitions: 3 },
            ColorAlgorithm::Degk { k: 2 },
        ] {
            for arch in [Arch::Cpu, Arch::GpuSim] {
                let run = vertex_coloring(&g, algo, arch, seed);
                check_coloring(&g, &run.color)
                    .map_err(|e| TestCaseError::fail(format!("{algo:?} {arch}: {e}")))?;
            }
        }
    }

    #[test]
    fn mis_always_maximal_independent(g in arb_graph(90, 250), seed in 0u64..20) {
        for algo in [
            MisAlgorithm::Baseline,
            MisAlgorithm::Bridge,
            MisAlgorithm::Rand { partitions: 3 },
            MisAlgorithm::Degk { k: 2 },
        ] {
            for arch in [Arch::Cpu, Arch::GpuSim] {
                let run = maximal_independent_set(&g, algo, arch, seed);
                check_maximal_independent_set(&g, &run.in_set)
                    .map_err(|e| TestCaseError::fail(format!("{algo:?} {arch}: {e}")))?;
            }
        }
    }

    #[test]
    fn filter_round_trips_and_composes(g in arb_graph(80, 200), seed in 0u64..20) {
        use symmetry_breaking::graph::subgraph::filter_edges;
        // Keeping everything reproduces the graph exactly.
        let all = filter_edges(&g, |_| true);
        prop_assert_eq!(&all, &g);
        // A random keep-set yields a valid graph with exactly those edges.
        let keep = |e: u32| symmetry_breaking::par::rng::hash2(seed, e as u64).is_multiple_of(2);
        let f = filter_edges(&g, keep);
        f.validate().unwrap();
        let expected = (0..g.num_edges() as u32).filter(|&e| keep(e)).count();
        prop_assert_eq!(f.num_edges(), expected);
        for &[u, v] in f.edge_list() {
            prop_assert!(g.has_edge(u, v));
        }
    }

    #[test]
    fn edge_list_io_round_trip(g in arb_graph(60, 150)) {
        use symmetry_breaking::graph::io::{read_edge_list, write_edge_list};
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(std::io::Cursor::new(buf), Some(g.num_vertices())).unwrap();
        prop_assert_eq!(g, g2);
    }

    #[test]
    fn bicc_parallel_agrees_with_hopcroft_tarjan(g in arb_graph(70, 150)) {
        use symmetry_breaking::decompose::bicc::{bicc_sequential, decompose_bicc};
        let par = decompose_bicc(&g, &Counters::new());
        let seq = bicc_sequential(&g);
        prop_assert_eq!(par.num_blocks, seq.num_blocks);
        prop_assert_eq!(&par.is_articulation, &seq.is_articulation);
        // Same edge partition (block ids may be permuted).
        let canon = |d: &symmetry_breaking::decompose::bicc::BiccDecomposition| {
            let mut m = std::collections::BTreeMap::<u32, Vec<u32>>::new();
            for (e, &b) in d.edge_block.iter().enumerate() {
                m.entry(b).or_default().push(e as u32);
            }
            let mut gs: Vec<Vec<u32>> = m.into_values().collect();
            gs.sort();
            gs
        };
        prop_assert_eq!(canon(&par), canon(&seq));
    }

    #[test]
    fn bicc_refines_bridge_decomposition(g in arb_graph(70, 150)) {
        // Every bridge is a singleton block, and the number of blocks is at
        // least the number of 2-edge-connected pieces that carry edges.
        use symmetry_breaking::decompose::bicc::decompose_bicc;
        let bicc = decompose_bicc(&g, &Counters::new());
        let bridge = decompose_bridge(&g, &Counters::new());
        for &e in &bridge.bridges {
            let b = bicc.edge_block[e as usize];
            let members = bicc
                .edge_block
                .iter()
                .filter(|&&x| x == b)
                .count();
            prop_assert_eq!(members, 1, "bridge {} not a singleton block", e);
        }
        prop_assert!(bicc.num_blocks >= bridge.bridges.len());
    }

    #[test]
    fn israeli_itai_maximal(g in arb_graph(90, 250), seed in 0u64..20) {
        use symmetry_breaking::core::matching::ii::ii_extend;
        let mut mate = vec![INVALID; g.num_vertices()];
        ii_extend(&g, symmetry_breaking::graph::EdgeView::full(), &mut mate, None, seed, &Counters::new());
        check_maximal_matching(&g, &mate).unwrap();
    }

    #[test]
    fn jp_orderings_proper(g in arb_graph(90, 250), seed in 0u64..10) {
        use symmetry_breaking::core::coloring::jp::{jp_color_ordered, JpOrdering};
        for ordering in [
            JpOrdering::Random,
            JpOrdering::LargestDegreeFirst,
            JpOrdering::SmallestDegreeLast,
        ] {
            let c = jp_color_ordered(&g, ordering, seed, &Counters::new());
            check_coloring(&g, &c)
                .map_err(|e| TestCaseError::fail(format!("{ordering:?}: {e}")))?;
        }
    }

    #[test]
    fn concurrent_union_find_partition_laws(pairs in proptest::collection::vec((0u32..200, 0u32..200), 0..400)) {
        use symmetry_breaking::par::union_find::ConcurrentUnionFind;
        let uf = ConcurrentUnionFind::new(200);
        for &(a, b) in &pairs {
            uf.unite(a, b);
        }
        // Reflexive, symmetric, and transitive through representatives.
        for &(a, b) in &pairs {
            prop_assert!(uf.same(a, b));
            prop_assert_eq!(uf.find(a), uf.find(b));
            // Representative is the minimum of the set it names.
            prop_assert!(uf.find(a) <= a);
        }
    }

    #[test]
    fn oriented_mis_on_arbitrary_low_degree_piece(g in arb_graph(100, 300)) {
        // Take the DEG2 low piece of an arbitrary graph and solve it with
        // the oriented algorithm — the exact situation inside MIS-Deg2.
        use symmetry_breaking::core::mis::oriented::oriented_mis_extend;
        let d = decompose_degk(&g, 2, &Counters::new());
        let low_side: Vec<bool> = d.is_high.iter().map(|&h| !h).collect();
        let mut st = vec![0u8; g.num_vertices()];
        oriented_mis_extend(&g, d.low_view(), &mut st, Some(&low_side), &Counters::new());
        let in_set: Vec<bool> = st.iter().map(|&s| s == 1).collect();
        check_independent_set(&d.low_graph(&g), &in_set).unwrap();
        // Every low vertex must be decided.
        for (v, &h) in d.is_high.iter().enumerate() {
            if !h {
                prop_assert_ne!(st[v], 0u8, "low vertex {} undecided", v);
            }
        }
    }

    #[test]
    fn overlay_materialize_matches_direct_build(
        g in arb_graph(60, 150),
        ops in proptest::collection::vec((0u8..5, 0u32..40, 0u32..40), 0..40),
    ) {
        // Reference model: apply the same edits to a plain normalized
        // edge set. Kinds 3 (self-loop) and 4 (duplicate add) force the
        // degenerate shapes the edit model must absorb silently.
        let mut n = g.num_vertices();
        let mut model: std::collections::BTreeSet<(u32, u32)> =
            g.edge_list().iter().map(|&[u, v]| (u.min(v), u.max(v))).collect();
        let mut log = EditLog::new();
        let add = |log: &mut EditLog, model: &mut std::collections::BTreeSet<(u32, u32)>,
                       n: &mut usize, u: u32, v: u32| {
            log.add_edge(u, v);
            if u != v {
                *n = (*n).max(u.max(v) as usize + 1);
                model.insert((u.min(v), u.max(v)));
            }
        };
        for &(kind, u, v) in &ops {
            match kind {
                0 => add(&mut log, &mut model, &mut n, u, v),
                1 => {
                    log.remove_edge(u, v);
                    model.remove(&(u.min(v), u.max(v)));
                }
                2 => {
                    log.add_vertex(u as usize);
                    n = n.max(u as usize);
                }
                3 => add(&mut log, &mut model, &mut n, u, u),
                _ => {
                    add(&mut log, &mut model, &mut n, u, v);
                    add(&mut log, &mut model, &mut n, u, v);
                }
            }
        }
        let direct = from_edge_list(n, &model.iter().copied().collect::<Vec<_>>());
        let edited = log.materialize(&g);
        prop_assert_eq!(&edited, &direct);
        // The zero-rebuild overlay must read identically to what it
        // materializes: same counts, same sorted adjacency per vertex.
        let ov = log.apply(&g);
        prop_assert_eq!(ov.num_vertices(), direct.num_vertices());
        prop_assert_eq!(ov.num_edges(), direct.num_edges());
        for vtx in direct.vertices() {
            prop_assert_eq!(ov.degree(vtx), direct.degree(vtx));
            prop_assert_eq!(ov.neighbors(vtx), direct.neighbors(vtx).to_vec());
        }
    }
}

// Degenerate inputs surfaced by the differential fuzzer (`sb-fuzz`): the
// proptest strategies above never generate n < 2 or all-isolated shapes,
// so the minimized fuzz cases are pinned here directly.

#[test]
fn rand_partition_with_more_parts_than_vertices() {
    let g = from_edge_list(3, &[(0, 1), (1, 2)]);
    for k in [4, 16, 100] {
        let d = decompose_rand(&g, k, 7, &Counters::new());
        assert_eq!(d.part.len(), 3);
        assert!(d.part.iter().all(|&p| (p as usize) < k));
        assert_eq!(d.m_induced + d.m_cross, g.num_edges());
        // Solves over the oversplit decomposition still finish and verify.
        for arch in [Arch::Cpu, Arch::GpuSim] {
            let run = maximal_matching(&g, MmAlgorithm::Rand { partitions: k }, arch, 7);
            check_maximal_matching(&g, &run.mate).unwrap();
            let run = maximal_independent_set(&g, MisAlgorithm::Rand { partitions: k }, arch, 7);
            check_maximal_independent_set(&g, &run.in_set).unwrap();
        }
    }
}

#[test]
fn degk_on_all_isolated_vertices() {
    let g = Graph::empty(6);
    for k in [0, 2, 5] {
        let d = decompose_degk(&g, k, &Counters::new());
        assert!(d.is_high.iter().all(|&h| !h), "isolated vertices are low");
        assert_eq!(d.m_high + d.m_low + d.m_cross, 0);
    }
    for arch in [Arch::Cpu, Arch::GpuSim] {
        let run = maximal_independent_set(&g, MisAlgorithm::Degk { k: 2 }, arch, 7);
        assert!(
            run.in_set.iter().all(|&b| b),
            "isolated vertices all join the MIS"
        );
        let run = maximal_matching(&g, MmAlgorithm::Degk { k: 2 }, arch, 7);
        check_maximal_matching(&g, &run.mate).unwrap();
    }
}

#[test]
fn bridge_on_empty_and_fully_disconnected_graphs() {
    for g in [Graph::empty(0), Graph::empty(1), Graph::empty(8)] {
        let d = decompose_bridge(&g, &Counters::new());
        assert!(d.bridges.is_empty());
        for arch in [Arch::Cpu, Arch::GpuSim] {
            let mm = maximal_matching(&g, MmAlgorithm::Bridge, arch, 7);
            check_maximal_matching(&g, &mm.mate).unwrap();
            let mis = maximal_independent_set(&g, MisAlgorithm::Bridge, arch, 7);
            check_maximal_independent_set(&g, &mis.in_set).unwrap();
            let col = vertex_coloring(&g, ColorAlgorithm::Bridge, arch, 7);
            check_coloring(&g, &col.color).unwrap();
        }
    }
}

#[test]
fn single_vertex_and_single_edge_solves() {
    for g in [from_edge_list(1, &[]), from_edge_list(2, &[(0, 1)])] {
        for arch in [Arch::Cpu, Arch::GpuSim] {
            for mode in [FrontierMode::Dense, FrontierMode::Compact] {
                let opts = SolveOpts::with_mode(mode);
                let mm = maximal_matching_opts(&g, MmAlgorithm::Baseline, arch, 7, &opts);
                check_maximal_matching(&g, &mm.mate).unwrap();
                let mis = maximal_independent_set_opts(&g, MisAlgorithm::Baseline, arch, 7, &opts);
                check_maximal_independent_set(&g, &mis.in_set).unwrap();
                let col = vertex_coloring_opts(&g, ColorAlgorithm::Baseline, arch, 7, &opts);
                check_coloring(&g, &col.color).unwrap();
            }
        }
    }
}

#[test]
fn edit_log_hardening_at_the_io_vertex_limit() {
    // The edit parser enforces the same id ceiling as the edge-list io
    // layer: ids at MAX_EDIT_VERTEX pass, one past is rejected, and the
    // `v:` count may reach MAX_EDIT_VERTEX + 1 (a count, not an id).
    let max = MAX_EDIT_VERTEX;
    let log = EditLog::parse(&format!("+{max}-0")).unwrap();
    assert_eq!(EditLog::parse(&log.wire()).unwrap(), log);
    assert!(EditLog::parse(&format!("+{}-0", max + 1)).is_err());
    assert!(EditLog::parse(&format!("v:{}", max + 1)).is_ok());
    assert!(EditLog::parse(&format!("v:{}", max + 2)).is_err());

    // Degenerate edits at the limit must be absorbed without growing the
    // graph: a self-loop on the largest legal id drops before it can
    // allocate 4 billion vertices, and removing an absent edge touching
    // it (twice) is a no-op.
    let g = from_edge_list(2, &[(0, 1)]);
    let looped = EditLog::parse(&format!("+{max}-{max}")).unwrap();
    assert_eq!(looped.materialize(&g), g);
    let ghost = EditLog::parse(&format!("-{max}-0,-{max}-0")).unwrap();
    assert_eq!(ghost.materialize(&g), g);
}
