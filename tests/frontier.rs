//! Frontier-compaction equivalence: the compacted-worklist solvers
//! (`FrontierMode::Compact`, the default) must produce byte-identical
//! assignments to the dense full-sweep forms wherever that identity is
//! documented, while scanning strictly fewer edges — and the scratch
//! arena must stop allocating after the first solve on it.
//!
//! VB coloring is the documented exception: its speculative
//! color-then-fix loop is interleaving-dependent, so dense-vs-compact
//! identity is only pinned at one thread; wider pools assert validity.

use std::sync::Arc;
use symmetry_breaking::core::mis::luby::luby_extend_frontier;
use symmetry_breaking::par::with_threads;
use symmetry_breaking::prelude::*;
use symmetry_breaking::trace::{TraceEvent, TraceSink};

fn graph() -> Graph {
    generate(GraphId::CoAuthorsCiteseer, Scale::Tiny, 99)
}

/// Widest pool for the 1-vs-N comparisons (CI runs 1 and 4).
fn wide() -> usize {
    std::env::var("SBREAK_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(4)
        .max(1)
}

fn mm(g: &Graph, algo: MmAlgorithm, arch: Arch, mode: FrontierMode) -> MatchingRun {
    maximal_matching_opts(g, algo, arch, 7, &SolveOpts::with_mode(mode))
}

fn mis(g: &Graph, algo: MisAlgorithm, arch: Arch, mode: FrontierMode) -> MisRun {
    maximal_independent_set_opts(g, algo, arch, 7, &SolveOpts::with_mode(mode))
}

#[test]
fn gm_matching_frontier_byte_identical_to_dense() {
    let g = graph();
    for threads in [1, wide()] {
        with_threads(threads, || {
            for algo in [
                MmAlgorithm::Baseline,
                MmAlgorithm::Rand { partitions: 5 },
                MmAlgorithm::Degk { k: 2 },
            ] {
                let dense = mm(&g, algo, Arch::Cpu, FrontierMode::Dense).mate;
                let compact = mm(&g, algo, Arch::Cpu, FrontierMode::Compact).mate;
                assert_eq!(
                    dense, compact,
                    "{algo:?} dense/compact diverged at {threads} threads"
                );
                check_maximal_matching(&g, &compact).unwrap();
            }
        });
    }
}

#[test]
fn lmax_matching_frontier_byte_identical_to_dense_on_full_view() {
    // The GPU-sim baseline runs LMAX over the full edge set in both modes
    // (no materialization, no edge-id remap), so identity holds directly.
    let g = graph();
    for threads in [1, wide()] {
        with_threads(threads, || {
            let dense = mm(&g, MmAlgorithm::Baseline, Arch::GpuSim, FrontierMode::Dense).mate;
            let compact = mm(
                &g,
                MmAlgorithm::Baseline,
                Arch::GpuSim,
                FrontierMode::Compact,
            )
            .mate;
            assert_eq!(
                dense, compact,
                "LMAX dense/compact diverged at {threads} threads"
            );
            check_maximal_matching(&g, &compact).unwrap();
        });
    }
}

#[test]
fn lmax_matching_frontier_byte_identical_to_dense_on_masked_views() {
    // The composite phases hand LMAX *masked* RAND/DEGk views. The dense
    // path materializes the admitted piece (renumbering edges) while the
    // compact path solves zero-copy with original edge ids; both key the
    // random weights by original id, so the masked solves must also be
    // byte-identical at every thread count.
    let g = graph();
    for threads in [1, wide()] {
        with_threads(threads, || {
            for algo in [
                MmAlgorithm::Rand { partitions: 5 },
                MmAlgorithm::Degk { k: 2 },
            ] {
                let dense = mm(&g, algo, Arch::GpuSim, FrontierMode::Dense).mate;
                let compact = mm(&g, algo, Arch::GpuSim, FrontierMode::Compact).mate;
                assert_eq!(
                    dense, compact,
                    "{algo:?} on gpu-sim dense/compact diverged at {threads} threads"
                );
                check_maximal_matching(&g, &compact).unwrap();
            }
        });
    }
}

#[test]
fn luby_mis_frontier_byte_identical_to_dense() {
    let g = graph();
    for threads in [1, wide()] {
        with_threads(threads, || {
            for arch in [Arch::Cpu, Arch::GpuSim] {
                for algo in [MisAlgorithm::Baseline, MisAlgorithm::Rand { partitions: 5 }] {
                    let dense = mis(&g, algo, arch, FrontierMode::Dense).in_set;
                    let compact = mis(&g, algo, arch, FrontierMode::Compact).in_set;
                    assert_eq!(
                        dense, compact,
                        "{algo:?}/{arch} dense/compact diverged at {threads} threads"
                    );
                    check_maximal_independent_set(&g, &compact).unwrap();
                }
            }
        });
    }
}

#[test]
fn vb_coloring_frontier_identical_at_one_thread_valid_at_many() {
    let g = graph();
    with_threads(1, || {
        let dense = vertex_coloring_opts(
            &g,
            ColorAlgorithm::Baseline,
            Arch::Cpu,
            7,
            &SolveOpts::with_mode(FrontierMode::Dense),
        )
        .color;
        let compact = vertex_coloring_opts(
            &g,
            ColorAlgorithm::Baseline,
            Arch::Cpu,
            7,
            &SolveOpts::with_mode(FrontierMode::Compact),
        )
        .color;
        assert_eq!(dense, compact, "VB dense/compact diverged at 1 thread");
    });
    with_threads(wide(), || {
        for mode in [FrontierMode::Dense, FrontierMode::Compact] {
            let run = vertex_coloring_opts(
                &g,
                ColorAlgorithm::Baseline,
                Arch::Cpu,
                7,
                &SolveOpts::with_mode(mode),
            );
            check_coloring(&g, &run.color).unwrap();
        }
    });
}

#[test]
fn compact_mode_scans_fewer_edges() {
    let g = graph();
    let dense = mm(&g, MmAlgorithm::Baseline, Arch::Cpu, FrontierMode::Dense);
    let compact = mm(&g, MmAlgorithm::Baseline, Arch::Cpu, FrontierMode::Compact);
    assert!(
        compact.stats.counters.edges_scanned < dense.stats.counters.edges_scanned,
        "GM compact scanned {} edges, dense {}",
        compact.stats.counters.edges_scanned,
        dense.stats.counters.edges_scanned,
    );
    let dense = mis(&g, MisAlgorithm::Baseline, Arch::Cpu, FrontierMode::Dense);
    let compact = mis(&g, MisAlgorithm::Baseline, Arch::Cpu, FrontierMode::Compact);
    assert!(
        compact.stats.counters.edges_scanned < dense.stats.counters.edges_scanned,
        "Luby compact scanned {} edges, dense {}",
        compact.stats.counters.edges_scanned,
        dense.stats.counters.edges_scanned,
    );
}

#[test]
fn frontier_rounds_shrink_monotonically() {
    // The frontier only ever loses vertices, so both the active size and
    // the edges scanned per round must be non-increasing over a Luby solve.
    let g = graph();
    let sink = Arc::new(TraceSink::enabled());
    let opts = SolveOpts {
        trace: Some(sink.clone()),
        frontier: FrontierMode::Compact,
    };
    maximal_independent_set_opts(&g, MisAlgorithm::Baseline, Arch::Cpu, 7, &opts);
    let rounds: Vec<_> = sink
        .events()
        .into_iter()
        .filter_map(|e| match e {
            TraceEvent::Round { record, .. } => Some(record),
            _ => None,
        })
        .collect();
    assert!(rounds.len() > 1, "expected a multi-round solve");
    for pair in rounds.windows(2) {
        assert!(
            pair[1].active <= pair[0].active,
            "active grew between rounds: {} -> {}",
            pair[0].active,
            pair[1].active
        );
        assert!(
            pair[1].edges_scanned <= pair[0].edges_scanned,
            "edge scans grew between rounds: {} -> {}",
            pair[0].edges_scanned,
            pair[1].edges_scanned
        );
    }
}

#[test]
fn scratch_arena_stops_allocating_after_first_solve() {
    let g = graph();
    let n = g.num_vertices();
    let mut scratch = Scratch::new();
    let view = symmetry_breaking::graph::view::EdgeView::full();

    let mut first = vec![0u8; n];
    luby_extend_frontier(
        &g,
        view,
        &mut first,
        None,
        7,
        &Counters::new(),
        &mut scratch,
    );
    let after_first = scratch.stats();
    assert!(after_first.fresh_allocs > 0, "first solve must allocate");

    let mut second = vec![0u8; n];
    luby_extend_frontier(
        &g,
        view,
        &mut second,
        None,
        7,
        &Counters::new(),
        &mut scratch,
    );
    let after_second = scratch.stats();
    assert_eq!(
        after_second.fresh_allocs, after_first.fresh_allocs,
        "second solve on a warm arena must not allocate"
    );
    assert!(after_second.reuses > after_first.reuses);
    assert_eq!(first, second, "same seed on a warm arena must not diverge");
}

#[test]
fn runstats_carry_the_scratch_arena_snapshot() {
    let g = graph();
    let run = mis(
        &g,
        MisAlgorithm::Degk { k: 2 },
        Arch::Cpu,
        FrontierMode::Compact,
    );
    assert!(
        run.stats.scratch.fresh_allocs > 0,
        "a compact-mode run must report its arena allocations via RunStats"
    );
    let dense = mis(&g, MisAlgorithm::Baseline, Arch::Cpu, FrontierMode::Dense);
    // Dense baselines may legitimately use no scratch; the field still
    // reads as an explicit zero rather than being absent.
    let _ = dense.stats.scratch.reuses;
}
