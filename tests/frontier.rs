//! Frontier-compaction equivalence: the compacted-worklist solvers
//! (`FrontierMode::Compact`, the default) and the u64-bitset solvers
//! (`FrontierMode::Bitset`) must produce byte-identical assignments to
//! the dense full-sweep forms wherever that identity is documented, while
//! scanning strictly fewer edges — and the scratch arena must stop
//! allocating after the first solve on it.
//!
//! The byte-identity pins run at 1 and `wide()` threads for each of the
//! three modes; below them, a randomized property test drives the
//! `ActiveSet` trait directly, checking `BitFrontier` (and the worklist
//! `Frontier`) against a plain boolean-array model over seeded op
//! sequences whose universes straddle the u64 word boundaries.
//!
//! VB coloring is the documented exception: its speculative
//! color-then-fix loop is interleaving-dependent, so cross-mode
//! identity is only pinned at one thread; wider pools assert validity.

use std::sync::Arc;
use symmetry_breaking::core::mis::luby::luby_extend_frontier;
use symmetry_breaking::par::frontier::{ActiveSet, BitFrontier, MarkSet};
use symmetry_breaking::par::with_threads;
use symmetry_breaking::prelude::*;
use symmetry_breaking::trace::{TraceEvent, TraceSink};

fn graph() -> Graph {
    generate(GraphId::CoAuthorsCiteseer, Scale::Tiny, 99)
}

/// Widest pool for the 1-vs-N comparisons (CI runs 1 and 4).
fn wide() -> usize {
    std::env::var("SBREAK_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(4)
        .max(1)
}

fn mm(g: &Graph, algo: MmAlgorithm, arch: Arch, mode: FrontierMode) -> MatchingRun {
    maximal_matching_opts(g, algo, arch, 7, &SolveOpts::with_mode(mode))
}

fn mis(g: &Graph, algo: MisAlgorithm, arch: Arch, mode: FrontierMode) -> MisRun {
    maximal_independent_set_opts(g, algo, arch, 7, &SolveOpts::with_mode(mode))
}

#[test]
fn gm_matching_frontier_byte_identical_to_dense() {
    let g = graph();
    for threads in [1, wide()] {
        with_threads(threads, || {
            for algo in [
                MmAlgorithm::Baseline,
                MmAlgorithm::Rand { partitions: 5 },
                MmAlgorithm::Degk { k: 2 },
            ] {
                let dense = mm(&g, algo, Arch::Cpu, FrontierMode::Dense).mate;
                let compact = mm(&g, algo, Arch::Cpu, FrontierMode::Compact).mate;
                let bitset = mm(&g, algo, Arch::Cpu, FrontierMode::Bitset).mate;
                assert_eq!(
                    dense, compact,
                    "{algo:?} dense/compact diverged at {threads} threads"
                );
                assert_eq!(
                    compact, bitset,
                    "{algo:?} compact/bitset diverged at {threads} threads"
                );
                check_maximal_matching(&g, &compact).unwrap();
            }
        });
    }
}

#[test]
fn lmax_matching_frontier_byte_identical_to_dense_on_full_view() {
    // The GPU-sim baseline runs LMAX over the full edge set in both modes
    // (no materialization, no edge-id remap), so identity holds directly.
    let g = graph();
    for threads in [1, wide()] {
        with_threads(threads, || {
            let dense = mm(&g, MmAlgorithm::Baseline, Arch::GpuSim, FrontierMode::Dense).mate;
            let compact = mm(
                &g,
                MmAlgorithm::Baseline,
                Arch::GpuSim,
                FrontierMode::Compact,
            )
            .mate;
            let bitset = mm(
                &g,
                MmAlgorithm::Baseline,
                Arch::GpuSim,
                FrontierMode::Bitset,
            )
            .mate;
            assert_eq!(
                dense, compact,
                "LMAX dense/compact diverged at {threads} threads"
            );
            assert_eq!(
                compact, bitset,
                "LMAX compact/bitset diverged at {threads} threads"
            );
            check_maximal_matching(&g, &compact).unwrap();
        });
    }
}

#[test]
fn lmax_matching_frontier_byte_identical_to_dense_on_masked_views() {
    // The composite phases hand LMAX *masked* RAND/DEGk views. The dense
    // path materializes the admitted piece (renumbering edges) while the
    // compact path solves zero-copy with original edge ids; both key the
    // random weights by original id, so the masked solves must also be
    // byte-identical at every thread count.
    let g = graph();
    for threads in [1, wide()] {
        with_threads(threads, || {
            for algo in [
                MmAlgorithm::Rand { partitions: 5 },
                MmAlgorithm::Degk { k: 2 },
            ] {
                let dense = mm(&g, algo, Arch::GpuSim, FrontierMode::Dense).mate;
                let compact = mm(&g, algo, Arch::GpuSim, FrontierMode::Compact).mate;
                let bitset = mm(&g, algo, Arch::GpuSim, FrontierMode::Bitset).mate;
                assert_eq!(
                    dense, compact,
                    "{algo:?} on gpu-sim dense/compact diverged at {threads} threads"
                );
                assert_eq!(
                    compact, bitset,
                    "{algo:?} on gpu-sim compact/bitset diverged at {threads} threads"
                );
                check_maximal_matching(&g, &compact).unwrap();
            }
        });
    }
}

#[test]
fn luby_mis_frontier_byte_identical_to_dense() {
    let g = graph();
    for threads in [1, wide()] {
        with_threads(threads, || {
            for arch in [Arch::Cpu, Arch::GpuSim] {
                for algo in [MisAlgorithm::Baseline, MisAlgorithm::Rand { partitions: 5 }] {
                    let dense = mis(&g, algo, arch, FrontierMode::Dense).in_set;
                    let compact = mis(&g, algo, arch, FrontierMode::Compact).in_set;
                    let bitset = mis(&g, algo, arch, FrontierMode::Bitset).in_set;
                    assert_eq!(
                        dense, compact,
                        "{algo:?}/{arch} dense/compact diverged at {threads} threads"
                    );
                    assert_eq!(
                        compact, bitset,
                        "{algo:?}/{arch} compact/bitset diverged at {threads} threads"
                    );
                    check_maximal_independent_set(&g, &compact).unwrap();
                }
            }
        });
    }
}

#[test]
fn vb_coloring_frontier_identical_at_one_thread_valid_at_many() {
    let g = graph();
    with_threads(1, || {
        let dense = vertex_coloring_opts(
            &g,
            ColorAlgorithm::Baseline,
            Arch::Cpu,
            7,
            &SolveOpts::with_mode(FrontierMode::Dense),
        )
        .color;
        let compact = vertex_coloring_opts(
            &g,
            ColorAlgorithm::Baseline,
            Arch::Cpu,
            7,
            &SolveOpts::with_mode(FrontierMode::Compact),
        )
        .color;
        let bitset = vertex_coloring_opts(
            &g,
            ColorAlgorithm::Baseline,
            Arch::Cpu,
            7,
            &SolveOpts::with_mode(FrontierMode::Bitset),
        )
        .color;
        assert_eq!(dense, compact, "VB dense/compact diverged at 1 thread");
        assert_eq!(compact, bitset, "VB compact/bitset diverged at 1 thread");
    });
    with_threads(wide(), || {
        for mode in [
            FrontierMode::Dense,
            FrontierMode::Compact,
            FrontierMode::Bitset,
        ] {
            let run = vertex_coloring_opts(
                &g,
                ColorAlgorithm::Baseline,
                Arch::Cpu,
                7,
                &SolveOpts::with_mode(mode),
            );
            check_coloring(&g, &run.color).unwrap();
        }
    });
}

#[test]
fn compact_mode_scans_fewer_edges() {
    // Compact must beat dense outright; bitset holds the same member sets
    // as compact, so its logical edge work must not exceed compact's.
    let g = graph();
    let dense = mm(&g, MmAlgorithm::Baseline, Arch::Cpu, FrontierMode::Dense);
    let compact = mm(&g, MmAlgorithm::Baseline, Arch::Cpu, FrontierMode::Compact);
    let bitset = mm(&g, MmAlgorithm::Baseline, Arch::Cpu, FrontierMode::Bitset);
    assert!(
        compact.stats.counters.edges_scanned < dense.stats.counters.edges_scanned,
        "GM compact scanned {} edges, dense {}",
        compact.stats.counters.edges_scanned,
        dense.stats.counters.edges_scanned,
    );
    assert!(
        bitset.stats.counters.edges_scanned <= compact.stats.counters.edges_scanned,
        "GM bitset scanned {} edges, compact {}",
        bitset.stats.counters.edges_scanned,
        compact.stats.counters.edges_scanned,
    );
    let dense = mis(&g, MisAlgorithm::Baseline, Arch::Cpu, FrontierMode::Dense);
    let compact = mis(&g, MisAlgorithm::Baseline, Arch::Cpu, FrontierMode::Compact);
    let bitset = mis(&g, MisAlgorithm::Baseline, Arch::Cpu, FrontierMode::Bitset);
    assert!(
        compact.stats.counters.edges_scanned < dense.stats.counters.edges_scanned,
        "Luby compact scanned {} edges, dense {}",
        compact.stats.counters.edges_scanned,
        dense.stats.counters.edges_scanned,
    );
    assert!(
        bitset.stats.counters.edges_scanned <= compact.stats.counters.edges_scanned,
        "Luby bitset scanned {} edges, compact {}",
        bitset.stats.counters.edges_scanned,
        compact.stats.counters.edges_scanned,
    );
}

#[test]
fn frontier_rounds_shrink_monotonically() {
    // The frontier only ever loses vertices, so both the active size and
    // the edges scanned per round must be non-increasing over a Luby solve.
    let g = graph();
    let sink = Arc::new(TraceSink::enabled());
    let opts = SolveOpts {
        trace: Some(sink.clone()),
        frontier: FrontierMode::Compact,
    };
    maximal_independent_set_opts(&g, MisAlgorithm::Baseline, Arch::Cpu, 7, &opts);
    let rounds: Vec<_> = sink
        .events()
        .into_iter()
        .filter_map(|e| match e {
            TraceEvent::Round { record, .. } => Some(record),
            _ => None,
        })
        .collect();
    assert!(rounds.len() > 1, "expected a multi-round solve");
    for pair in rounds.windows(2) {
        assert!(
            pair[1].active <= pair[0].active,
            "active grew between rounds: {} -> {}",
            pair[0].active,
            pair[1].active
        );
        assert!(
            pair[1].edges_scanned <= pair[0].edges_scanned,
            "edge scans grew between rounds: {} -> {}",
            pair[0].edges_scanned,
            pair[1].edges_scanned
        );
    }
}

#[test]
fn scratch_arena_stops_allocating_after_first_solve() {
    let g = graph();
    let n = g.num_vertices();
    let mut scratch = Scratch::new();
    let view = symmetry_breaking::graph::view::EdgeView::full();

    let mut first = vec![0u8; n];
    luby_extend_frontier(
        &g,
        view,
        &mut first,
        None,
        7,
        &Counters::new(),
        &mut scratch,
    );
    let after_first = scratch.stats();
    assert!(after_first.fresh_allocs > 0, "first solve must allocate");

    let mut second = vec![0u8; n];
    luby_extend_frontier(
        &g,
        view,
        &mut second,
        None,
        7,
        &Counters::new(),
        &mut scratch,
    );
    let after_second = scratch.stats();
    assert_eq!(
        after_second.fresh_allocs, after_first.fresh_allocs,
        "second solve on a warm arena must not allocate"
    );
    assert!(after_second.reuses > after_first.reuses);
    assert_eq!(first, second, "same seed on a warm arena must not diverge");
}

#[test]
fn runstats_carry_the_scratch_arena_snapshot() {
    let g = graph();
    let run = mis(
        &g,
        MisAlgorithm::Degk { k: 2 },
        Arch::Cpu,
        FrontierMode::Compact,
    );
    assert!(
        run.stats.scratch.fresh_allocs > 0,
        "a compact-mode run must report its arena allocations via RunStats"
    );
    let dense = mis(&g, MisAlgorithm::Baseline, Arch::Cpu, FrontierMode::Dense);
    // Dense baselines may legitimately use no scratch; the field still
    // reads as an explicit zero rather than being absent.
    let _ = dense.stats.scratch.reuses;
}

// ---- randomized ActiveSet equivalence against a boolean-array model ----

/// splitmix64 finalizer: the property tests' only randomness source, so
/// every run (and every failure) replays from `(n, seed)` alone.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Round-`round` survival predicate (~3/4 keep, so sets shrink but live a
/// few rounds). `round == u64::MAX` is the initial population.
fn keep(seed: u64, round: u64, i: u32) -> bool {
    mix(seed ^ round.wrapping_mul(0x0000_0100_0000_01B3) ^ i as u64) & 3 != 0
}

/// Round-`round` mark bit (~1/2 set) for the `select_marked_into` op.
fn marked(seed: u64, round: u64, i: u32) -> bool {
    mix(seed ^ round.wrapping_mul(0xC2B2_AE3D_27D4_EB4F) ^ i as u64) & 1 == 0
}

/// Which shrink op round `round` applies (shared by model and drivers).
fn op_of(seed: u64, round: u64) -> u64 {
    mix(seed ^ 0x000F_F1CE ^ round) % 4
}

/// Replay the op sequence against a plain boolean array: the ground truth
/// every `ActiveSet` implementation must reproduce member-for-member.
fn model_ops(n: usize, seed: u64, rounds: u64) -> Vec<Vec<u32>> {
    let mut active: Vec<bool> = (0..n as u32).map(|i| keep(seed, u64::MAX, i)).collect();
    let mut log = Vec::new();
    for round in 0..rounds {
        let members: Vec<u32> = (0..n as u32).filter(|&i| active[i as usize]).collect();
        let done = members.is_empty();
        log.push(members);
        if done {
            break;
        }
        // Ops 0, 1, and 3 drop by the survival predicate; op 2 drops by
        // the mark bits. All four are intersections, so the model needs no
        // per-op branches beyond the predicate choice.
        let by_marks = op_of(seed, round) == 2;
        for i in 0..n as u32 {
            let stay = if by_marks {
                marked(seed, round, i)
            } else {
                keep(seed, round, i)
            };
            active[i as usize] = active[i as usize] && stay;
        }
    }
    log
}

/// Drive one `ActiveSet` implementation through the same seeded sequence,
/// rotating over every shrink op the trait offers (`retain`,
/// `select_into`, `select_marked_into`, `reset_from`), and log the member
/// list observed via `for_each_seq` before each op.
fn drive_ops<W: ActiveSet>(n: usize, seed: u64, rounds: u64) -> Vec<Vec<u32>> {
    let mut scratch = Scratch::new();
    let mut cur = W::take(&mut scratch);
    let mut aux = W::take(&mut scratch);
    let mut log = Vec::new();
    cur.reset_range(n, move |i| keep(seed, u64::MAX, i));
    for round in 0..rounds {
        let mut members = Vec::new();
        cur.for_each_seq(|v| members.push(v));
        assert_eq!(
            members.len(),
            cur.len(),
            "len() disagrees with the members for_each_seq visits"
        );
        let done = cur.is_empty();
        log.push(members.clone());
        if done {
            break;
        }
        match op_of(seed, round) {
            0 => cur.retain(move |i| keep(seed, round, i)),
            1 => {
                cur.select_into(move |i| keep(seed, round, i), &mut aux);
                std::mem::swap(&mut cur, &mut aux);
            }
            2 => {
                let marks = W::take_marks(&mut scratch, n, false);
                for i in 0..n as u32 {
                    if marked(seed, round, i) {
                        marks.put(i, true);
                    }
                }
                cur.select_marked_into(&marks, &mut aux);
                std::mem::swap(&mut cur, &mut aux);
                W::recycle_marks(marks, &mut scratch);
            }
            _ => {
                let survivors: Vec<u32> = members
                    .into_iter()
                    .filter(|&i| keep(seed, round, i))
                    .collect();
                cur.reset_from(&survivors, n);
            }
        }
    }
    cur.recycle(&mut scratch);
    aux.recycle(&mut scratch);
    log
}

#[test]
fn bitset_and_worklist_frontiers_match_the_boolean_array_model() {
    // Universe sizes straddle the u64 word boundaries (63/64/65, 127/128/
    // 129) where bitset masking bugs live, plus a multi-word tail. Each
    // (n, seed) pair replays a full op sequence; the parallel ops run under
    // both pool widths so word-level races would also surface.
    const ROUNDS: u64 = 12;
    for threads in [1, wide()] {
        with_threads(threads, || {
            for &n in &[0usize, 1, 5, 63, 64, 65, 127, 128, 129, 1000] {
                for salt in 0..3u64 {
                    let seed = mix(n as u64 ^ salt.wrapping_mul(0x0005_DEEC_E66D));
                    let expect = model_ops(n, seed, ROUNDS);
                    let bits = drive_ops::<BitFrontier>(n, seed, ROUNDS);
                    assert_eq!(
                        bits, expect,
                        "BitFrontier diverged from the boolean-array model \
                         (n={n}, seed={seed:#x}, {threads} threads)"
                    );
                    let list = drive_ops::<Frontier>(n, seed, ROUNDS);
                    assert_eq!(
                        list, expect,
                        "worklist Frontier diverged from the boolean-array model \
                         (n={n}, seed={seed:#x}, {threads} threads)"
                    );
                }
            }
        });
    }
}
