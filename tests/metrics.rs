//! End-to-end tests of the observability surface: `--metrics` snapshots,
//! `sbreak profile`, and the `sbreak perfdiff` regression sentinel.
//!
//! The metrics registry is process-wide, so the 1-vs-N determinism
//! comparison runs two real `sbreak` processes and compares their
//! snapshots — exactly the situation the `Logical`/`Runtime` class split
//! exists for (DESIGN.md §12).

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn sbreak(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_sbreak"))
        .args(args)
        .output()
        .expect("failed to launch sbreak")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn repo_path(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

/// Snapshot of one `sbreak solve --metrics` run at the given thread count.
fn solve_snapshot(dir: &Path, threads: &str) -> sb_metrics::Snapshot {
    let out = dir.join(format!("metrics-{threads}.json"));
    let run = sbreak(&[
        "solve",
        "gen:lp1",
        "--scale",
        "0.05",
        "--problem",
        "mis",
        "--algo",
        "degk:2",
        "--seed",
        "7",
        "--threads",
        threads,
        "--metrics",
        out.to_str().unwrap(),
    ]);
    assert!(run.status.success(), "{}", stderr(&run));
    let text = std::fs::read_to_string(&out).unwrap();
    sb_metrics::Snapshot::parse_json(&text).unwrap()
}

#[test]
fn logical_series_are_identical_across_thread_counts() {
    let dir = tmp_dir("sbreak-metrics-det");
    let one = solve_snapshot(&dir, "1");
    let four = solve_snapshot(&dir, "4");

    let logical = |s: &sb_metrics::Snapshot| -> Vec<(String, u64)> {
        s.logical()
            .series
            .iter()
            .map(|series| {
                (
                    series.key_string(),
                    series.value.scalar().expect("logical series are scalar"),
                )
            })
            .collect()
    };
    let (l1, l4) = (logical(&one), logical(&four));
    assert!(
        !l1.is_empty(),
        "a traced solve must record logical series (frontier + scratch)"
    );
    assert_eq!(
        l1, l4,
        "logical (thread-invariant) series must not depend on the pool size"
    );
    // The runtime class exists precisely because these are NOT comparable:
    // the 4-thread run starts workers the 1-thread run never does.
    assert_eq!(four.scalar_or_zero("sb_pool_threads_started"), 3);
    assert_eq!(one.scalar_or_zero("sb_pool_threads_started"), 0);
    std::fs::remove_dir_all(&dir).ok();
}

const SMOKE_JOBS: &str = r#"
[defaults]
graph = "gen:lp1"
scale = 0.05
seed = 11
graph_seed = 42

[[job]]
label = "mm"
problem = "mm"
algo = "rand:4"

[[job]]
label = "color"
problem = "color"
algo = "degk:2"

[[job]]
label = "mis"
problem = "mis"
algo = "degk:2"
"#;

#[test]
fn batch_metrics_snapshot_covers_engine_pool_and_scratch() {
    let dir = tmp_dir("sbreak-metrics-batch");
    let jobs = dir.join("jobs.toml");
    std::fs::write(&jobs, SMOKE_JOBS).unwrap();
    let mpath = dir.join("metrics.json");
    let out = sbreak(&[
        "batch",
        jobs.to_str().unwrap(),
        "--threads",
        "2",
        "-o",
        dir.join("report.json").to_str().unwrap(),
        "--metrics",
        mpath.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("[metrics written to"));

    let snap = sb_metrics::Snapshot::parse_json(&std::fs::read_to_string(&mpath).unwrap()).unwrap();
    // One graph shared by three jobs: the second and third hit the cache.
    assert!(snap.scalar_or_zero("sb_engine_graph_cache_hits") > 0);
    assert!(snap.scalar_or_zero("sb_engine_graph_cache_inserts") > 0);
    // Each job pinned a 2-thread pool.
    assert!(snap.scalar_or_zero("sb_pool_installs") > 0);
    assert!(snap.scalar_or_zero("sb_pool_threads_started") > 0);
    // Compact-mode round loops borrowed scratch buffers.
    assert!(snap.scalar_or_zero("sb_par_scratch_fresh_allocs") > 0);
    assert!(snap.scalar_or_zero("sb_par_frontier_items_scanned") > 0);
    // Phase latency histograms came along.
    assert!(snap
        .find("sb_par_phase_duration_us", &[("phase", "decompose")])
        .is_some());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_prom_extension_writes_prometheus_text() {
    let dir = tmp_dir("sbreak-metrics-prom");
    let mpath = dir.join("metrics.prom");
    let out = sbreak(&[
        "solve",
        "gen:lp1",
        "--scale",
        "0.05",
        "--problem",
        "mm",
        "--metrics",
        mpath.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = std::fs::read_to_string(&mpath).unwrap();
    assert!(
        text.contains("# TYPE sb_par_frontier_compactions counter"),
        "{text}"
    );
    assert!(text.contains("le=\"+Inf\""), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn profile_reproduces_the_trace_summary_byte_for_byte() {
    let fixture = repo_path("tests/golden/profile_trace.jsonl");
    let text = std::fs::read_to_string(&fixture).unwrap();
    let events = symmetry_breaking::trace::parse_jsonl(&text).unwrap();
    let expected = symmetry_breaking::trace::TraceSummary::from_events(&events).render_line();

    let out = sbreak(&["profile", fixture.to_str().unwrap(), "--top", "3"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert_eq!(
        text.lines().next().unwrap(),
        expected,
        "profile's first line is the library TraceSummary rendering, unchanged"
    );
    assert!(text.contains("Per-phase round times"), "{text}");
    assert!(text.contains("p99 us"), "{text}");
    assert!(text.contains("Hottest 3 rounds"), "{text}");
    for phase in ["decompose", "fringe-peel", "cross-solve"] {
        assert!(text.contains(phase), "missing phase {phase}: {text}");
    }
}

#[test]
fn profile_renders_cache_and_arena_summary_from_a_snapshot() {
    let dir = tmp_dir("sbreak-profile-metrics");
    let snapshot = dir.join("m.json");
    let trace = dir.join("t.jsonl");
    let out = sbreak(&[
        "solve",
        "gen:lp1",
        "--scale",
        "0.05",
        "--problem",
        "mis",
        "--trace",
        trace.to_str().unwrap(),
        "--metrics",
        snapshot.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let out = sbreak(&[
        "profile",
        trace.to_str().unwrap(),
        "--metrics",
        snapshot.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("Caches and scratch arena"), "{text}");
    assert!(text.contains("scratch arena"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn perfdiff_fails_on_a_planted_regression_and_passes_within_noise() {
    let dir = tmp_dir("sbreak-perfdiff");
    let base = dir.join("base.json");
    let good = dir.join("good.json");
    let slow = dir.join("slow.json");
    let bad = dir.join("bad.json");
    std::fs::write(
        &base,
        r#"{"title":"t","records":[{"workload":"a","wall ms":"100","scan edges":"1000","speedup":"2.00x"}]}"#,
    )
    .unwrap();
    // +5% ms: inside the default 10% gate.
    std::fs::write(
        &good,
        r#"{"title":"t","records":[{"workload":"a","wall ms":"105","scan edges":"1000","speedup":"1.90x"}]}"#,
    )
    .unwrap();
    // +20% ms: over the gate, but Runtime class — warn-only by default.
    std::fs::write(
        &slow,
        r#"{"title":"t","records":[{"workload":"a","wall ms":"120","scan edges":"1000","speedup":"1.70x"}]}"#,
    )
    .unwrap();
    // +100% edges: a Logical-class regression — always enforced.
    std::fs::write(
        &bad,
        r#"{"title":"t","records":[{"workload":"a","wall ms":"100","scan edges":"2000","speedup":"2.00x"}]}"#,
    )
    .unwrap();

    let out = sbreak(&["perfdiff", base.to_str().unwrap(), good.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("within noise"));

    // Runtime-only regression: reported and warned about, exit 0.
    let out = sbreak(&["perfdiff", base.to_str().unwrap(), slow.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("REGRESSED"), "{}", stdout(&out));
    assert!(stdout(&out).contains("warn-only"), "{}", stdout(&out));

    // The same candidate under --strict: timing columns are enforced.
    let out = sbreak(&[
        "perfdiff",
        base.to_str().unwrap(),
        slow.to_str().unwrap(),
        "--strict",
    ]);
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
    assert!(
        stderr(&out).contains("performance regression"),
        "{}",
        stderr(&out)
    );

    // Logical-class regression (edges_scanned): enforced by default.
    let out = sbreak(&["perfdiff", base.to_str().unwrap(), bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
    assert!(
        stdout(&out).contains("(logical, enforced)"),
        "{}",
        stdout(&out)
    );
    assert!(
        stderr(&out).contains("performance regression"),
        "{}",
        stderr(&out)
    );

    // A tighter gate plus --strict flips the within-noise case too.
    let out = sbreak(&[
        "perfdiff",
        base.to_str().unwrap(),
        good.to_str().unwrap(),
        "--rel-tol",
        "0.02",
        "--strict",
    ]);
    assert_eq!(out.status.code(), Some(1));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn perfdiff_accepts_the_checked_in_baselines() {
    for name in ["results/BENCH_frontier.json", "results/BENCH_engine.json"] {
        let path = repo_path(name);
        if !path.exists() {
            continue;
        }
        let p = path.to_str().unwrap();
        let out = sbreak(&["perfdiff", p, p]);
        assert!(
            out.status.success(),
            "{name} vs itself must be green: {}\n{}",
            stdout(&out),
            stderr(&out)
        );
        assert!(stdout(&out).contains("0 regressed"), "{}", stdout(&out));
    }
}
