//! Integration tests for `sbreak serve`: a real server on a loopback
//! socket, driven through real TCP clients. Covers the protocol
//! round-trip, typed rejection of malformed JSONL, cross-tenant cache
//! sharing, admission control (queue-full → `overloaded`), deadlines
//! (expired → `timeout` without cache poisoning), cancellation, clean
//! shutdown, and the loadgen cold-vs-warm contract.

use symmetry_breaking::core::verify::check_maximal_independent_set;
use symmetry_breaking::engine::protocol::{MutateParams, SolveParams};
use symmetry_breaking::engine::{Client, Engine, GraphSource, ServeConfig, Server, ServerHandle};
use symmetry_breaking::graph::editlog::EditLog;
use symmetry_breaking::loadgen::{run_loadgen, LoadgenOptions};

/// A loopback server with the test-relevant knobs exposed.
fn spawn(workers: usize, queue_cap: usize, allow_debug: bool) -> ServerHandle {
    Server::spawn(ServeConfig {
        workers,
        queue_cap,
        allow_debug,
        ..ServeConfig::default()
    })
    .expect("bind loopback")
}

/// The standard test job: tiny generated graph, fixed seeds.
fn params(problem: &str, algo: &str) -> SolveParams {
    let mut p = SolveParams::new("gen:lp1", problem, algo);
    p.scale = 0.05;
    p.graph_seed = Some(42);
    p.seed = 11;
    p
}

/// The standard mutate request: same tiny graph/seeds as [`params`], on
/// the MIS family (whose rendered solution is trivially parseable back).
fn mutate_params(tenant: &str, edits: &str) -> MutateParams {
    let mut m = MutateParams::new("gen:lp1", "mis", "degk:2", edits);
    m.solve.scale = 0.05;
    m.solve.graph_seed = Some(42);
    m.solve.seed = 11;
    m.solve.tenant = tenant.into();
    m
}

/// Parse a rendered MIS solution (one in-set vertex id per line) back
/// into the flag vector `verify` expects.
fn parse_mis(rendered: &str, n: usize) -> Vec<bool> {
    let mut in_set = vec![false; n];
    for line in rendered.lines() {
        in_set[line.trim().parse::<usize>().unwrap()] = true;
    }
    in_set
}

#[test]
fn mutate_repairs_are_valid_for_the_edited_graph() {
    let server = spawn(2, 8, false);
    let mut client = Client::connect(server.addr()).unwrap();

    // First mutate on a stream primes it with a fresh solve.
    let mut m = mutate_params("tenant-a", "");
    m.solve.id = "m0".into();
    m.solve.want_solution = true;
    let prime = client.mutate(&m).unwrap();
    assert_eq!(prime.status(), "ok", "{:?}", prime.raw);
    assert_eq!(prime.str_field("op"), Some("mutate"));
    assert_eq!(prime.bool_field("repaired"), Some(false));
    assert_eq!(prime.num_field("edits_applied"), Some(0.0));
    assert_eq!(prime.num_field("edits_total"), Some(0.0));

    // The second batch repairs the prior across the delta.
    m.edits = "+0-5,-0-1".into();
    m.solve.id = "m1".into();
    let repaired = client.mutate(&m).unwrap();
    assert_eq!(repaired.status(), "ok", "{:?}", repaired.raw);
    assert_eq!(repaired.bool_field("repaired"), Some(true));
    assert_eq!(repaired.num_field("edits_applied"), Some(2.0));
    assert_eq!(repaired.num_field("edits_total"), Some(2.0));

    // The repaired solution must be valid and maximal for the *edited*
    // graph — checked against an in-process materialization of the same
    // (base, edit log) pair.
    let job = m.solve.to_job_spec().unwrap();
    let src = GraphSource::parse(&job.graph, job.scale, job.effective_graph_seed()).unwrap();
    let (base, _, _) = Engine::with_cap(0).graph(&src).unwrap();
    let edited = EditLog::parse("+0-5,-0-1").unwrap().materialize(&base);
    let in_set = parse_mis(
        repaired.str_field("solution").expect("want_solution set"),
        edited.num_vertices(),
    );
    check_maximal_independent_set(&edited, &in_set).expect("repaired MIS verifies");

    // A third batch keeps extending the same stream.
    m.edits = "+2-7".into();
    m.solve.id = "m2".into();
    let third = client.mutate(&m).unwrap();
    assert_eq!(third.bool_field("repaired"), Some(true));
    assert_eq!(third.num_field("edits_applied"), Some(1.0));
    assert_eq!(third.num_field("edits_total"), Some(3.0));

    let stats = client.stats().unwrap();
    let repairs = stats.raw.get("repairs").unwrap();
    assert_eq!(repairs.get("requests").and_then(|v| v.as_u64()), Some(3));
    assert_eq!(repairs.get("repaired").and_then(|v| v.as_u64()), Some(2));
    assert_eq!(repairs.get("fresh").and_then(|v| v.as_u64()), Some(1));
    assert_eq!(repairs.get("streams").and_then(|v| v.as_u64()), Some(1));

    server.shutdown();
    server.join();
}

#[test]
fn pipelined_mutates_on_one_stream_commit_every_batch() {
    // The lost-update regression: with multiple workers draining one
    // connection's pipelined mutates, two batches for the same stream
    // used to read the same prior state and the later commit silently
    // dropped the earlier acknowledged batch. Serialized streams must
    // commit every batch exactly once, so the acknowledged running
    // totals are a permutation of 1..=N.
    let server = spawn(4, 32, false);
    let mut client = Client::connect(server.addr()).unwrap();

    let mut m = mutate_params("tenant-a", "");
    m.solve.id = "p0".into();
    assert_eq!(client.mutate(&m).unwrap().status(), "ok");

    const BATCHES: u64 = 8;
    for i in 0..BATCHES {
        m.edits = format!("+{i}-{}", i + 9);
        m.solve.id = format!("b{i}");
        client.send_line(&m.to_json()).unwrap();
    }
    let mut totals = Vec::new();
    for _ in 0..BATCHES {
        let reply = client.recv().unwrap();
        assert_eq!(reply.status(), "ok", "{:?}", reply.raw);
        assert_eq!(reply.num_field("edits_applied"), Some(1.0));
        totals.push(reply.num_field("edits_total").unwrap() as u64);
    }
    totals.sort_unstable();
    assert_eq!(
        totals,
        (1..=BATCHES).collect::<Vec<_>>(),
        "every batch must advance the stream exactly once"
    );

    let stats = client.stats().unwrap();
    let repairs = stats.raw.get("repairs").unwrap();
    assert_eq!(
        repairs.get("requests").and_then(|v| v.as_u64()),
        Some(BATCHES + 1)
    );
    assert_eq!(
        repairs.get("edits_applied").and_then(|v| v.as_u64()),
        Some(BATCHES)
    );
    assert_eq!(repairs.get("streams").and_then(|v| v.as_u64()), Some(1));

    server.shutdown();
    server.join();
}

#[test]
fn mutation_streams_rebase_without_losing_the_solution_contract() {
    // With a two-edit rebase window every multi-edit batch crosses the
    // threshold: the stream adopts its materialized graph as the new
    // base and restarts the log. Repairs must keep verifying against the
    // cumulative edit history and `edits_total` must keep counting
    // across rebases.
    let server = Server::spawn(ServeConfig {
        rebase_log_edits: 2,
        ..ServeConfig::default()
    })
    .expect("bind loopback");
    let mut client = Client::connect(server.addr()).unwrap();

    let mut m = mutate_params("tenant-a", "");
    m.solve.id = "r0".into();
    assert_eq!(client.mutate(&m).unwrap().status(), "ok");

    let all_edits = ["+0-5,-0-1", "+2-7,+3-8", "+1-6"];
    for (i, edits) in all_edits.iter().enumerate() {
        m.edits = (*edits).into();
        m.solve.id = format!("r{}", i + 1);
        m.solve.want_solution = true;
        let reply = client.mutate(&m).unwrap();
        assert_eq!(reply.status(), "ok", "{:?}", reply.raw);
        assert_eq!(reply.bool_field("repaired"), Some(true));

        // The served solution must verify on the cumulative edited
        // graph, reconstructed in-process by replaying every batch.
        let job = m.solve.to_job_spec().unwrap();
        let src = GraphSource::parse(&job.graph, job.scale, job.effective_graph_seed()).unwrap();
        let (base, _, _) = Engine::with_cap(0).graph(&src).unwrap();
        let mut edited = (*base).clone();
        for batch in &all_edits[..=i] {
            edited = EditLog::parse(batch).unwrap().materialize(&edited);
        }
        let in_set = parse_mis(
            reply.str_field("solution").expect("want_solution set"),
            edited.num_vertices(),
        );
        check_maximal_independent_set(&edited, &in_set).expect("repair verifies across rebases");
    }

    let stats = client.stats().unwrap();
    let repairs = stats.raw.get("repairs").unwrap();
    assert_eq!(repairs.get("edits_applied").and_then(|v| v.as_u64()), Some(5));
    // Batches 1 and 2 each fill the two-edit window and rebase; batch 3
    // (one edit) leaves the restarted log below it.
    assert_eq!(repairs.get("rebases").and_then(|v| v.as_u64()), Some(2));
    assert_eq!(repairs.get("streams").and_then(|v| v.as_u64()), Some(1));

    server.shutdown();
    server.join();
}

#[test]
fn idle_mutation_streams_are_evicted_at_the_cap() {
    // A one-stream cap: every new stream evicts the idle previous one.
    // The evicted tenant's next mutate re-primes from scratch (fresh
    // solve, totals restart) instead of leaking state, and the table
    // never outgrows the cap.
    let server = Server::spawn(ServeConfig {
        max_streams: 1,
        ..ServeConfig::default()
    })
    .expect("bind loopback");
    let mut client = Client::connect(server.addr()).unwrap();

    let mut ma = mutate_params("tenant-a", "+0-5");
    let ra = client.mutate(&ma).unwrap();
    assert_eq!(ra.status(), "ok", "{:?}", ra.raw);
    assert_eq!(ra.num_field("edits_total"), Some(1.0));

    // A second tenant's stream pushes the table past the cap; tenant-a's
    // idle stream is the LRU victim.
    let mb = mutate_params("tenant-b", "");
    assert_eq!(client.mutate(&mb).unwrap().status(), "ok");

    // tenant-a starts over: no prior to repair, totals reset to this
    // batch alone.
    ma.edits = "+1-6".into();
    let ra2 = client.mutate(&ma).unwrap();
    assert_eq!(ra2.status(), "ok", "{:?}", ra2.raw);
    assert_eq!(ra2.bool_field("repaired"), Some(false));
    assert_eq!(ra2.num_field("edits_total"), Some(1.0));

    let stats = client.stats().unwrap();
    let repairs = stats.raw.get("repairs").unwrap();
    assert_eq!(repairs.get("streams").and_then(|v| v.as_u64()), Some(1));
    assert_eq!(repairs.get("evicted").and_then(|v| v.as_u64()), Some(2));
    assert_eq!(repairs.get("fresh").and_then(|v| v.as_u64()), Some(3));
    assert_eq!(repairs.get("repaired").and_then(|v| v.as_u64()), Some(0));

    server.shutdown();
    server.join();
}

#[test]
fn mutate_streams_are_isolated_per_tenant() {
    let server = spawn(2, 8, false);
    let mut a = Client::connect(server.addr()).unwrap();
    let mut b = Client::connect(server.addr()).unwrap();

    // Both tenants run the identical (graph, config, seed); their edit
    // streams must not observe each other.
    let mut ma = mutate_params("tenant-a", "");
    assert_eq!(a.mutate(&ma).unwrap().status(), "ok");
    let mut mb = mutate_params("tenant-b", "");
    let prime_b = b.mutate(&mb).unwrap();
    assert_eq!(prime_b.status(), "ok");
    // The base graph itself is shared through the cache across tenants.
    assert_eq!(prime_b.bool_field("graph_cached"), Some(true));

    ma.edits = "+0-5,+1-6,-0-1".into();
    let ra = a.mutate(&ma).unwrap();
    assert_eq!(ra.num_field("edits_total"), Some(3.0));

    // tenant-b's stream is still at zero edits; its batch counts alone.
    mb.edits = "-0-1".into();
    let rb = b.mutate(&mb).unwrap();
    assert_eq!(rb.bool_field("repaired"), Some(true));
    assert_eq!(rb.num_field("edits_total"), Some(1.0));

    let stats = a.stats().unwrap();
    let repairs = stats.raw.get("repairs").unwrap();
    assert_eq!(repairs.get("streams").and_then(|v| v.as_u64()), Some(2));
    assert_eq!(repairs.get("requests").and_then(|v| v.as_u64()), Some(4));

    server.shutdown();
    server.join();
}

#[test]
fn cancelled_mutate_leaves_the_stream_unpoisoned() {
    let server = spawn(1, 8, true);
    let mut client = Client::connect(server.addr()).unwrap();

    let mut m = mutate_params("tenant-a", "");
    m.solve.id = "p0".into();
    assert_eq!(client.mutate(&m).unwrap().status(), "ok");

    // Cancel a repair mid-flight: the commit gate must discard the
    // advanced stream state.
    m.edits = "+0-5".into();
    m.solve.id = "mc".into();
    m.solve.debug_sleep_ms = 2_000;
    client.send_line(&m.to_json()).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(100));
    client.send_line(r#"{"op":"cancel","id":"mc"}"#).unwrap();
    let (mut saw_ack, mut saw_cancelled) = (false, false);
    for _ in 0..2 {
        let reply = client.recv().unwrap();
        if reply.str_field("op") == Some("cancel") {
            assert_eq!(reply.bool_field("found"), Some(true));
            saw_ack = true;
        } else {
            assert_eq!(reply.status(), "cancelled", "{:?}", reply.raw);
            assert_eq!(reply.id(), "mc");
            saw_cancelled = true;
        }
    }
    assert!(saw_ack && saw_cancelled);

    // Resubmitting the identical batch succeeds, and its totals prove the
    // cancelled attempt never advanced the stream (else the log would
    // hold the edit twice).
    m.solve.id = "mr".into();
    m.solve.debug_sleep_ms = 0;
    let retry = client.mutate(&m).unwrap();
    assert_eq!(retry.status(), "ok", "{:?}", retry.raw);
    assert_eq!(retry.bool_field("repaired"), Some(true));
    assert_eq!(retry.num_field("edits_applied"), Some(1.0));
    assert_eq!(retry.num_field("edits_total"), Some(1.0));

    // The cancelled attempt counted as a request but never as a commit.
    let stats = client.stats().unwrap();
    let repairs = stats.raw.get("repairs").unwrap();
    assert_eq!(repairs.get("requests").and_then(|v| v.as_u64()), Some(3));
    assert_eq!(repairs.get("repaired").and_then(|v| v.as_u64()), Some(1));
    assert_eq!(repairs.get("fresh").and_then(|v| v.as_u64()), Some(1));
    assert_eq!(
        stats
            .raw
            .get("requests")
            .and_then(|r| r.get("cancelled"))
            .and_then(|v| v.as_u64()),
        Some(1)
    );

    server.shutdown();
    server.join();
}

#[test]
fn solve_round_trips_with_verified_solution_bytes() {
    let server = spawn(2, 8, false);
    let mut client = Client::connect(server.addr()).unwrap();

    let pong = client.ping().unwrap();
    assert_eq!(pong.status(), "ok");
    assert_eq!(pong.str_field("op"), Some("ping"));

    let mut p = params("mm", "rand:4");
    p.id = "r1".into();
    p.want_solution = true;
    let reply = client.solve(&p).unwrap();
    assert_eq!(reply.status(), "ok", "{:?}", reply.raw);
    assert_eq!(reply.id(), "r1");
    assert_eq!(reply.bool_field("graph_cached"), Some(false));
    assert_eq!(reply.bool_field("decomp_cached"), Some(false));
    assert!(reply.num_field("queue_ms").is_some());

    // The served solution must be byte-identical to an in-process,
    // cache-disabled engine run of the same spec.
    let job = p.to_job_spec().unwrap();
    let reference = Engine::with_cap(0).run_job(&job, None);
    let expected = reference.solution.expect("reference solves").render();
    assert_eq!(reply.str_field("solution"), Some(expected.as_str()));
    assert_eq!(reply.str_field("detail"), Some(reference.detail.as_str()));

    let stats = client.stats().unwrap();
    assert_eq!(stats.status(), "ok");
    assert_eq!(
        stats
            .raw
            .get("requests")
            .and_then(|r| r.get("ok"))
            .and_then(|v| v.as_u64()),
        Some(1)
    );

    server.shutdown();
    server.join();
}

#[test]
fn malformed_lines_get_typed_errors_and_the_connection_survives() {
    let server = spawn(1, 8, false);
    let mut client = Client::connect(server.addr()).unwrap();

    // Each malformed line is rejected with a typed bad_request — and the
    // connection keeps working afterwards.
    for bad in [
        "this is not json",
        "[1,2,3]",
        r#"{"op":"quux"}"#,
        r#"{"op":"solve","graph":"gen:lp1","problem":"mm","algo":"bicc","bogus":1}"#,
        r#"{"op":"solve","id":"m1","graph":"gen:lp1","problem":"lp","algo":"bicc"}"#,
    ] {
        let reply = client.request(bad).unwrap();
        assert_eq!(reply.status(), "error", "line {bad:?}: {:?}", reply.raw);
        assert_eq!(reply.str_field("code"), Some("bad_request"), "line {bad:?}");
        assert!(reply.str_field("detail").is_some());
    }
    // The id is echoed when the malformed request carried one.
    let reply = client
        .request(r#"{"op":"solve","id":"m1","graph":"gen:lp1","problem":"lp","algo":"bicc"}"#)
        .unwrap();
    assert_eq!(reply.id(), "m1");

    // A job that parses but fails at run time is a typed `failed`, not a
    // bad_request.
    let mut p = params("mm", "bicc");
    p.graph = "gen:nope".into();
    let reply = client.solve(&p).unwrap();
    assert_eq!(reply.status(), "error");
    assert_eq!(reply.str_field("code"), Some("failed"));

    // And the connection still solves.
    let reply = client.solve(&params("mm", "bicc")).unwrap();
    assert_eq!(reply.status(), "ok", "{:?}", reply.raw);

    server.shutdown();
    server.join();
}

#[test]
fn concurrent_tenants_share_the_decomposition_cache() {
    let server = spawn(2, 8, false);
    let mut a = Client::connect(server.addr()).unwrap();
    let mut b = Client::connect(server.addr()).unwrap();

    let mut job = params("color", "degk:2");
    job.tenant = "tenant-a".into();
    let first = a.solve(&job).unwrap();
    assert_eq!(first.status(), "ok", "{:?}", first.raw);
    assert_eq!(first.bool_field("decomp_cached"), Some(false));

    // A different tenant on a different connection submits the identical
    // job and rides tenant-a's cache entries.
    job.tenant = "tenant-b".into();
    let second = b.solve(&job).unwrap();
    assert_eq!(second.status(), "ok", "{:?}", second.raw);
    assert_eq!(second.bool_field("graph_cached"), Some(true));
    assert_eq!(second.bool_field("decomp_cached"), Some(true));

    let stats = b.stats().unwrap();
    let decomp_hits = stats
        .raw
        .get("decomp_cache")
        .and_then(|c| c.get("hits"))
        .and_then(|v| v.as_u64())
        .unwrap();
    assert!(decomp_hits >= 1, "stats must report the shared hit");
    // Both tenants appear in the per-tenant usage listing (only tenant-a
    // inserted, but the listing covers every charged tenant).
    let tenants = stats.raw.get("tenants").and_then(|t| t.as_arr()).unwrap();
    assert!(
        tenants
            .iter()
            .any(|t| t.get("tenant").and_then(|v| v.as_str()) == Some("tenant-a")),
        "tenant-a holds the cache bytes: {tenants:?}"
    );

    server.shutdown();
    server.join();
}

#[test]
fn full_queue_rejects_with_overloaded_immediately() {
    // One worker, queue of one: the first solve occupies the worker, the
    // second fills the queue, the third must bounce.
    let server = spawn(1, 1, true);
    let mut holder = Client::connect(server.addr()).unwrap();
    let mut queued = Client::connect(server.addr()).unwrap();
    let mut bounced = Client::connect(server.addr()).unwrap();

    let mut hold = params("mm", "bicc");
    hold.id = "hold".into();
    hold.debug_sleep_ms = 600;
    holder.send_line(&hold.to_json()).unwrap();
    // Let the worker dequeue the holder before filling the queue.
    std::thread::sleep(std::time::Duration::from_millis(150));

    let mut wait = params("mm", "bicc");
    wait.id = "wait".into();
    queued.send_line(&wait.to_json()).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(50));

    let mut extra = params("mm", "bicc");
    extra.id = "extra".into();
    let reply = bounced.solve(&extra).unwrap();
    assert_eq!(reply.status(), "overloaded", "{:?}", reply.raw);
    assert_eq!(reply.id(), "extra");
    assert!(reply.str_field("detail").unwrap().contains("queue full"));

    // The rejected request cost nothing; the admitted ones complete.
    assert_eq!(holder.recv().unwrap().status(), "ok");
    assert_eq!(queued.recv().unwrap().status(), "ok");

    let stats = bounced.stats().unwrap();
    assert_eq!(
        stats
            .raw
            .get("requests")
            .and_then(|r| r.get("overloaded"))
            .and_then(|v| v.as_u64()),
        Some(1)
    );

    server.shutdown();
    server.join();
}

#[test]
fn expired_deadline_times_out_without_poisoning_the_caches() {
    let server = spawn(1, 8, true);
    let mut client = Client::connect(server.addr()).unwrap();

    let mut p = params("color", "degk:2");
    p.id = "late".into();
    p.debug_sleep_ms = 300;
    p.deadline_ms = Some(50);
    let reply = client.solve(&p).unwrap();
    assert_eq!(reply.status(), "timeout", "{:?}", reply.raw);
    assert_eq!(reply.id(), "late");

    // The timed-out request must not have inserted anything.
    {
        let engine = server.engine();
        let engine = engine.lock();
        assert_eq!(engine.graph_cache_stats().inserts, 0);
        assert_eq!(engine.decomp_cache_stats().inserts, 0);
    }

    // The identical job with a sane deadline then runs and commits.
    let mut p = params("color", "degk:2");
    p.id = "fine".into();
    p.deadline_ms = Some(60_000);
    let reply = client.solve(&p).unwrap();
    assert_eq!(reply.status(), "ok", "{:?}", reply.raw);
    {
        let engine = server.engine();
        let engine = engine.lock();
        assert_eq!(engine.graph_cache_stats().inserts, 1);
        assert_eq!(engine.decomp_cache_stats().inserts, 1);
    }

    server.shutdown();
    server.join();
}

#[test]
fn cancel_releases_an_in_flight_request() {
    let server = spawn(1, 8, true);
    let mut client = Client::connect(server.addr()).unwrap();

    let mut p = params("mm", "bicc");
    p.id = "c1".into();
    p.debug_sleep_ms = 2_000;
    client.send_line(&p.to_json()).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(100));
    client.send_line(r#"{"op":"cancel","id":"c1"}"#).unwrap();

    // Two replies, in whatever order the threads produce them: the cancel
    // acknowledgement and the cancelled solve.
    let (mut saw_ack, mut saw_cancelled) = (false, false);
    for _ in 0..2 {
        let reply = client.recv().unwrap();
        if reply.str_field("op") == Some("cancel") {
            assert_eq!(reply.bool_field("found"), Some(true));
            saw_ack = true;
        } else {
            assert_eq!(reply.status(), "cancelled", "{:?}", reply.raw);
            assert_eq!(reply.id(), "c1");
            saw_cancelled = true;
        }
    }
    assert!(saw_ack && saw_cancelled);

    // Cancellation is cooperative abandonment: nothing was committed.
    {
        let engine = server.engine();
        let engine = engine.lock();
        assert_eq!(engine.graph_cache_stats().inserts, 0);
    }

    // Cancelling an unknown id is acknowledged with found=false.
    let reply = client.request(r#"{"op":"cancel","id":"ghost"}"#).unwrap();
    assert_eq!(reply.bool_field("found"), Some(false));

    server.shutdown();
    server.join();
}

#[test]
fn shutdown_op_stops_the_server_cleanly() {
    let server = spawn(2, 8, false);
    let addr = server.addr();
    let mut client = Client::connect(addr).unwrap();
    assert_eq!(
        client.solve(&params("mis", "degk:2")).unwrap().status(),
        "ok"
    );

    let ack = client.shutdown().unwrap();
    assert_eq!(ack.status(), "ok");
    assert_eq!(ack.str_field("op"), Some("shutdown"));

    // join() returns because the shutdown op tripped the flag; afterwards
    // the port no longer accepts work.
    server.join();
    match Client::connect(addr) {
        Err(_) => {}
        Ok(mut c) => assert!(c.ping().is_err(), "post-shutdown ping must fail"),
    }
}

#[test]
fn loadgen_warm_p50_beats_cold_p50_in_process() {
    // The resident-service contract end to end: repeat solves over warm
    // caches must have lower median latency than first-touch solves. Each
    // workload job loads its own graph, so the cold pass pays generation,
    // ingestion, and decomposition on every request.
    let summary = run_loadgen(&LoadgenOptions {
        clients: 1,
        repeats: 3,
        graph: "gen:lp1".into(),
        scale: 1.0,
        seed: 42,
        workers: 2,
        ..LoadgenOptions::default()
    })
    .expect("loadgen runs");
    assert_eq!(summary.cold.ok, 3, "cold phase solves the workload");
    assert_eq!(summary.warm.ok, 9, "warm phase solves every repeat");
    assert_eq!(summary.cold.decomp_hits, 0, "cold phase is all misses");
    assert!(
        summary.warm.decomp_hits >= summary.warm.ok,
        "warm repeats must hit the decomposition cache"
    );
    assert!(
        summary.warm.p50_ms < summary.cold.p50_ms,
        "warm p50 {:.3} ms must beat cold p50 {:.3} ms",
        summary.warm.p50_ms,
        summary.cold.p50_ms
    );
}
