//! End-to-end tests of the `sbreak` binary: real process, real files,
//! real exit codes.

use std::process::{Command, Output};

fn sbreak(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_sbreak"))
        .args(args)
        .output()
        .expect("failed to launch sbreak")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

#[test]
fn generate_stats_solve_round_trip() {
    let dir = std::env::temp_dir().join("sbreak-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let edges = dir.join("g.edges");
    let edges_s = edges.to_str().unwrap();

    let out = sbreak(&[
        "generate", "lp1", "--scale", "0.05", "--seed", "3", "-o", edges_s,
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("wrote lp1"));

    let out = sbreak(&["stats", edges_s, "--bridges"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("vertices"), "{text}");
    assert!(text.contains("bridges"), "{text}");

    for (problem, algo) in [("mm", "rand:4"), ("color", "degk:2"), ("mis", "bicc")] {
        let out = sbreak(&["solve", edges_s, "--problem", problem, "--algo", algo]);
        assert!(out.status.success(), "{problem}/{algo}: {}", stderr(&out));
        assert!(
            stdout(&out).contains("verified"),
            "{problem}/{algo} must self-verify: {}",
            stdout(&out)
        );
    }

    // Solution file output.
    let sol = dir.join("mis.txt");
    let out = sbreak(&[
        "solve",
        edges_s,
        "--problem",
        "mis",
        "-o",
        sol.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let body = std::fs::read_to_string(&sol).unwrap();
    assert!(
        body.lines().count() > 10,
        "solution file should list vertices"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn decompose_methods_all_run() {
    for method in ["bridge", "rand:4", "degk:2", "metis:4", "bicc"] {
        let out = sbreak(&[
            "decompose",
            "gen:c-73",
            "--scale",
            "0.05",
            "--method",
            method,
        ]);
        assert!(out.status.success(), "{method}: {}", stderr(&out));
        assert!(stdout(&out).contains("decomposed in"), "{method}");
    }
}

#[test]
fn error_paths_are_clean() {
    // (args, expected stderr fragment)
    let cases: Vec<(&[&str], &str)> = vec![
        (&["stats", "gen:nope"], "unknown graph"),
        (&["stats", "/definitely/not/a/file"], "cannot read"),
        (
            &["solve", "gen:lp1", "--scale", "0.02", "--problem", "tsp"],
            "unknown problem",
        ),
        (
            &[
                "solve",
                "gen:lp1",
                "--scale",
                "0.02",
                "--problem",
                "mm",
                "--algo",
                "rand:0",
            ],
            "positive integer",
        ),
        (&["generate", "lp1"], "needs -o"),
        (&["stats", "gen:lp1", "--bogus"], "unknown flag"),
    ];
    for (args, fragment) in cases {
        let out = sbreak(args);
        assert!(
            !out.status.success(),
            "{args:?} should fail, stdout: {}",
            stdout(&out)
        );
        assert!(
            stderr(&out).contains(fragment),
            "{args:?}: stderr {:?} missing {fragment:?}",
            stderr(&out)
        );
        // Errors must be one-liners, not panics with backtraces.
        assert!(
            !stderr(&out).contains("panicked"),
            "{args:?} must not panic: {}",
            stderr(&out)
        );
    }
}

#[test]
fn no_args_prints_usage() {
    let out = sbreak(&[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("usage:"));
}

#[test]
fn seed_determinism_through_the_cli() {
    let a = sbreak(&[
        "solve",
        "gen:webbase-1M",
        "--scale",
        "0.05",
        "--problem",
        "mis",
        "--seed",
        "9",
    ]);
    let b = sbreak(&[
        "solve",
        "gen:webbase-1M",
        "--scale",
        "0.05",
        "--problem",
        "mis",
        "--seed",
        "9",
    ]);
    assert!(a.status.success() && b.status.success());
    // Same size and rounds; only wall-clock may differ.
    let strip_ms = |s: String| -> String { s.split(" in ").next().unwrap_or_default().to_string() };
    assert_eq!(strip_ms(stdout(&a)), strip_ms(stdout(&b)));
}
