//! End-to-end tests of the `sbreak` binary: real process, real files,
//! real exit codes.

use std::process::{Command, Output};

fn sbreak(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_sbreak"))
        .args(args)
        .output()
        .expect("failed to launch sbreak")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

#[test]
fn generate_stats_solve_round_trip() {
    let dir = std::env::temp_dir().join("sbreak-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let edges = dir.join("g.edges");
    let edges_s = edges.to_str().unwrap();

    let out = sbreak(&[
        "generate", "lp1", "--scale", "0.05", "--seed", "3", "-o", edges_s,
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("wrote lp1"));

    let out = sbreak(&["stats", edges_s, "--bridges"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("vertices"), "{text}");
    assert!(text.contains("bridges"), "{text}");

    for (problem, algo) in [("mm", "rand:4"), ("color", "degk:2"), ("mis", "bicc")] {
        let out = sbreak(&["solve", edges_s, "--problem", problem, "--algo", algo]);
        assert!(out.status.success(), "{problem}/{algo}: {}", stderr(&out));
        assert!(
            stdout(&out).contains("verified"),
            "{problem}/{algo} must self-verify: {}",
            stdout(&out)
        );
    }

    // Solution file output.
    let sol = dir.join("mis.txt");
    let out = sbreak(&[
        "solve",
        edges_s,
        "--problem",
        "mis",
        "-o",
        sol.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let body = std::fs::read_to_string(&sol).unwrap();
    assert!(
        body.lines().count() > 10,
        "solution file should list vertices"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn decompose_methods_all_run() {
    for method in ["bridge", "rand:4", "degk:2", "metis:4", "bicc"] {
        let out = sbreak(&[
            "decompose",
            "gen:c-73",
            "--scale",
            "0.05",
            "--method",
            method,
        ]);
        assert!(out.status.success(), "{method}: {}", stderr(&out));
        assert!(stdout(&out).contains("decomposed in"), "{method}");
    }
}

#[test]
fn error_paths_are_clean() {
    // (args, expected stderr fragment)
    let cases: Vec<(&[&str], &str)> = vec![
        (&["stats", "gen:nope"], "unknown graph"),
        (&["stats", "/definitely/not/a/file"], "cannot read"),
        (
            &["solve", "gen:lp1", "--scale", "0.02", "--problem", "tsp"],
            "unknown problem",
        ),
        (
            &[
                "solve",
                "gen:lp1",
                "--scale",
                "0.02",
                "--problem",
                "mm",
                "--algo",
                "rand:0",
            ],
            "positive integer",
        ),
        (&["generate", "lp1"], "needs -o"),
        (&["stats", "gen:lp1", "--bogus"], "unknown flag"),
    ];
    for (args, fragment) in cases {
        let out = sbreak(args);
        assert!(
            !out.status.success(),
            "{args:?} should fail, stdout: {}",
            stdout(&out)
        );
        assert!(
            stderr(&out).contains(fragment),
            "{args:?}: stderr {:?} missing {fragment:?}",
            stderr(&out)
        );
        // Errors must be one-liners, not panics with backtraces.
        assert!(
            !stderr(&out).contains("panicked"),
            "{args:?} must not panic: {}",
            stderr(&out)
        );
    }
}

#[test]
fn no_args_prints_usage() {
    let out = sbreak(&[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("usage:"));
}

/// Three jobs on one generated graph: the standard batch smoke input.
const SMOKE_JOBS: &str = r#"
# sbreak batch smoke jobs
[defaults]
graph = "gen:lp1"
scale = 0.05
seed = 11
graph_seed = 42

[[job]]
label = "mm"
problem = "mm"
algo = "rand:4"

[[job]]
label = "color"
problem = "color"
algo = "degk:2"

[[job]]
label = "mis"
problem = "mis"
algo = "degk:2"
"#;

#[test]
fn batch_runs_jobs_and_writes_report_and_solutions() {
    let dir = std::env::temp_dir().join("sbreak-cli-batch");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let jobs = dir.join("jobs.toml");
    std::fs::write(&jobs, SMOKE_JOBS).unwrap();
    let json = dir.join("BENCH_engine.json");
    let sols = dir.join("solutions");

    let out = sbreak(&[
        "batch",
        jobs.to_str().unwrap(),
        "--compare-fresh",
        "-o",
        json.to_str().unwrap(),
        "--out-dir",
        sols.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("batch: 3 job(s)"), "{text}");
    assert!(text.contains("TOTAL"), "{text}");

    let body = std::fs::read_to_string(&json).unwrap();
    for key in ["\"job\"", "\"decomp\"", "\"speedup\"", "\"records\""] {
        assert!(body.contains(key), "{key} missing from {body}");
    }
    for label in ["mm", "color", "mis"] {
        let sol = sols.join(format!("{label}.txt"));
        let got = std::fs::read_to_string(&sol).unwrap_or_else(|e| panic!("{sol:?}: {e}"));
        assert!(!got.is_empty(), "{label}.txt must list the solution");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn batch_cache_cap_zero_output_is_byte_identical_to_cached() {
    let dir = std::env::temp_dir().join("sbreak-cli-batch-cap0");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let jobs = dir.join("jobs.toml");
    std::fs::write(&jobs, SMOKE_JOBS).unwrap();

    let mut solutions = Vec::new();
    for cap in ["0", "64"] {
        let sols = dir.join(format!("sol-{cap}"));
        let json = dir.join(format!("report-{cap}.json"));
        let out = sbreak(&[
            "batch",
            jobs.to_str().unwrap(),
            "--cache-cap",
            cap,
            "-o",
            json.to_str().unwrap(),
            "--out-dir",
            sols.to_str().unwrap(),
        ]);
        assert!(out.status.success(), "cap {cap}: {}", stderr(&out));
        let mut per_label = Vec::new();
        for label in ["mm", "color", "mis"] {
            per_label.push(std::fs::read(sols.join(format!("{label}.txt"))).unwrap());
        }
        solutions.push(per_label);
    }
    assert_eq!(
        solutions[0], solutions[1],
        "cache-cap 0 and cached runs must produce byte-identical solutions"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn batch_malformed_jobs_files_get_positioned_diagnostics() {
    let dir = std::env::temp_dir().join("sbreak-cli-batch-bad");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();

    // (file body, expected stderr fragments)
    let cases: Vec<(&str, Vec<&str>)> =
        vec![
        ("[[job]]\nbogus = 1\n", vec![":2:", "unknown key 'bogus'"]),
        ("[jobs]\n", vec![":1:", "unknown section"]),
        ("problem = \"mm\"\n", vec![":1:", "outside any section"]),
        ("[[job]]\nproblem = \"mm\"\n", vec!["missing required key 'graph'"]),
        (
            "[[job]]\ngraph = \"gen:lp1\"\nscale = 0.05\nproblem = \"tsp\"\nalgo = \"rand:4\"\n",
            vec!["unknown problem 'tsp'"],
        ),
    ];
    for (i, (body, fragments)) in cases.iter().enumerate() {
        let path = dir.join(format!("bad{i}.toml"));
        std::fs::write(&path, body).unwrap();
        let out = sbreak(&["batch", path.to_str().unwrap()]);
        assert_eq!(out.status.code(), Some(1), "case {i} should exit 1");
        for fragment in fragments {
            assert!(
                stderr(&out).contains(fragment),
                "case {i}: stderr {:?} missing {fragment:?}",
                stderr(&out)
            );
        }
        assert!(!stderr(&out).contains("panicked"), "case {i}");
    }

    // Unreadable path and missing operand.
    let out = sbreak(&["batch", "/definitely/not/a/jobs.toml"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("cannot read"));
    let out = sbreak(&["batch"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("batch needs a jobs file"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn batch_timeout_fails_the_run_and_names_the_job() {
    let dir = std::env::temp_dir().join("sbreak-cli-batch-timeout");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let jobs = dir.join("jobs.toml");
    std::fs::write(
        &jobs,
        // Full-scale so the job cannot finish inside the parent's
        // scheduling quantum and beat the 0 ms watchdog (seen on
        // single-core hosts with small graphs).
        "[[job]]\nlabel = \"slow\"\ngraph = \"gen:lp1\"\nscale = 1.0\n\
         problem = \"mm\"\nalgo = \"rand:4\"\ntimeout_ms = 0\n",
    )
    .unwrap();
    let json = dir.join("report.json");
    let out = sbreak(&[
        "batch",
        jobs.to_str().unwrap(),
        "-o",
        json.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1));
    let err = stderr(&out);
    assert!(err.contains("slow") && err.contains("timeout"), "{err}");
    // An explicit -o report is still written for a failed run.
    assert!(json.exists(), "explicit -o report missing for failed run");

    // Without -o, a failed run must refuse to touch the default
    // results/BENCH_engine.json artifact (run from a scratch cwd so a
    // regression can't clobber the repo's checked-in benchmark).
    let out = Command::new(env!("CARGO_BIN_EXE_sbreak"))
        .args(["batch", jobs.to_str().unwrap()])
        .current_dir(&dir)
        .output()
        .expect("failed to launch sbreak");
    assert_eq!(out.status.code(), Some(1));
    assert!(
        stderr(&out).contains("not overwriting default"),
        "{}",
        stderr(&out)
    );
    assert!(
        !dir.join("results").exists(),
        "failed run without -o must not create results/"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fuzz_replay_round_trips_a_case_file() {
    let dir = std::env::temp_dir().join("sbreak-cli-replay");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let case = dir.join("case.txt");
    std::fs::write(
        &case,
        "# sb-fuzz counterexample\n# config: mm-baseline@cpu\n# seed: 7\n\
         # threads: 2\n# failure: validity: synthetic\n# n: 2\n0 1\n",
    )
    .unwrap();

    // The clean solvers pass this case, so the replay reports it fixed.
    let out = sbreak(&["fuzz", "--replay", case.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("case passes"), "{}", stdout(&out));

    // A corrupt case file is a clean one-line error.
    let bad = dir.join("bad.txt");
    std::fs::write(&bad, "# sb-fuzz counterexample\n0 1\n").unwrap();
    let out = sbreak(&["fuzz", "--replay", bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("config"), "{}", stderr(&out));
    assert!(!stderr(&out).contains("panicked"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn seed_determinism_through_the_cli() {
    let a = sbreak(&[
        "solve",
        "gen:webbase-1M",
        "--scale",
        "0.05",
        "--problem",
        "mis",
        "--seed",
        "9",
    ]);
    let b = sbreak(&[
        "solve",
        "gen:webbase-1M",
        "--scale",
        "0.05",
        "--problem",
        "mis",
        "--seed",
        "9",
    ]);
    assert!(a.status.success() && b.status.success());
    // Same size and rounds; only wall-clock may differ.
    let strip_ms = |s: String| -> String { s.split(" in ").next().unwrap_or_default().to_string() };
    assert_eq!(strip_ms(stdout(&a)), strip_ms(stdout(&b)));
}
