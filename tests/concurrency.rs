//! Concurrency suite: the rayon layer runs a real worker pool, so every
//! solver here executes on genuinely concurrent threads. These tests drive
//! each solver family (GM/LMAX/II matching, VB/EB/JP coloring,
//! Luby/greedy/oriented MIS) and each decomposition (bridge, rand, degk)
//! at 1, 2, 4, and 8 threads, passing every result through the independent
//! `sb_core::verify` checkers — legality must hold under every
//! interleaving (Blelloch–Fineman–Shun's correctness argument for the
//! atomics-based rounds, made empirical).
//!
//! Environment knobs (both optional):
//! * `SBREAK_TEST_THREADS=<n>` caps the thread axis (CI runs 1 and 4).
//! * `SBREAK_STRESS_ITERS=<n>` overrides the stress-test iteration count.

use symmetry_breaking::core::coloring::jp::jp_color;
use symmetry_breaking::core::matching::ii::ii_extend;
use symmetry_breaking::core::mis::greedy::greedy_mis;
use symmetry_breaking::core::mis::oriented::oriented_mis_extend;
use symmetry_breaking::core::mis::status;
use symmetry_breaking::graph::view::EdgeView;
use symmetry_breaking::par::with_threads;
use symmetry_breaking::prelude::*;

/// Pool widths under test: 1, 2, 4, 8, capped by `SBREAK_TEST_THREADS`.
fn thread_axis() -> Vec<usize> {
    let cap = std::env::var("SBREAK_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(8)
        .max(1);
    [1, 2, 4, 8].into_iter().filter(|&t| t <= cap).collect()
}

/// Random-geometric stand-in (the paper's rgg family).
fn rgg() -> Graph {
    generate(GraphId::Rgg23, Scale::Tiny, 7)
}

/// Kronecker/R-MAT stand-in (skewed degrees stress the claim loop).
fn rmat() -> Graph {
    generate(GraphId::KronLogn20, Scale::Tiny, 7)
}

#[test]
fn matching_verifier_clean_at_every_width() {
    let algos = [
        MmAlgorithm::Baseline, // GM on CPU, LMAX on GPU-sim
        MmAlgorithm::Bridge,
        MmAlgorithm::Rand { partitions: 4 },
        MmAlgorithm::Degk { k: 2 },
    ];
    for (gname, g) in [("rgg", rgg()), ("rmat", rmat())] {
        for arch in [Arch::Cpu, Arch::GpuSim] {
            for algo in algos {
                for &t in &thread_axis() {
                    let mate = with_threads(t, || maximal_matching(&g, algo, arch, 11)).mate;
                    check_maximal_matching(&g, &mate).unwrap_or_else(|e| {
                        panic!("{gname} / {algo:?} / {arch} @ {t} threads: {e}")
                    });
                }
            }
        }
    }
}

#[test]
fn coloring_verifier_clean_at_every_width() {
    let algos = [
        ColorAlgorithm::Baseline, // VB on CPU, EB on GPU-sim
        ColorAlgorithm::Bridge,
        ColorAlgorithm::Rand { partitions: 2 },
        ColorAlgorithm::Degk { k: 2 },
    ];
    for (gname, g) in [("rgg", rgg()), ("rmat", rmat())] {
        for arch in [Arch::Cpu, Arch::GpuSim] {
            for algo in algos {
                for &t in &thread_axis() {
                    let color = with_threads(t, || vertex_coloring(&g, algo, arch, 11)).color;
                    check_coloring(&g, &color).unwrap_or_else(|e| {
                        panic!("{gname} / {algo:?} / {arch} @ {t} threads: {e}")
                    });
                }
            }
        }
    }
}

#[test]
fn mis_verifier_clean_at_every_width() {
    let algos = [
        MisAlgorithm::Baseline, // Luby on both archs
        MisAlgorithm::Bridge,
        MisAlgorithm::Rand { partitions: 4 },
        MisAlgorithm::Degk { k: 2 }, // oriented solver on the low subgraph
    ];
    for (gname, g) in [("rgg", rgg()), ("rmat", rmat())] {
        for arch in [Arch::Cpu, Arch::GpuSim] {
            for algo in algos {
                for &t in &thread_axis() {
                    let in_set =
                        with_threads(t, || maximal_independent_set(&g, algo, arch, 11)).in_set;
                    check_maximal_independent_set(&g, &in_set).unwrap_or_else(|e| {
                        panic!("{gname} / {algo:?} / {arch} @ {t} threads: {e}")
                    });
                }
            }
        }
    }
}

/// The ablation baselines that are called directly rather than through the
/// dispatch enums: II matching, JP coloring, greedy MIS, and the oriented
/// bounded-degree MIS (on a cycle, where its degree precondition holds).
#[test]
fn ablation_baselines_verifier_clean_at_every_width() {
    let g = rgg();
    let n = 2_000u32;
    let cycle_edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    let cycle = from_edge_list(n as usize, &cycle_edges);

    for &t in &thread_axis() {
        with_threads(t, || {
            let mut mate = vec![INVALID; g.num_vertices()];
            ii_extend(&g, EdgeView::full(), &mut mate, None, 5, &Counters::new());
            check_maximal_matching(&g, &mate).unwrap_or_else(|e| panic!("II @ {t} threads: {e}"));

            let color = jp_color(&g, 5, &Counters::new());
            check_coloring(&g, &color).unwrap_or_else(|e| panic!("JP @ {t} threads: {e}"));

            let mut st = vec![status::UNDECIDED; g.num_vertices()];
            greedy_mis(&g, &mut st, 5, &Counters::new());
            let in_set: Vec<bool> = st.iter().map(|&s| s == status::IN).collect();
            check_maximal_independent_set(&g, &in_set)
                .unwrap_or_else(|e| panic!("greedy MIS @ {t} threads: {e}"));

            let mut st = vec![status::UNDECIDED; cycle.num_vertices()];
            oriented_mis_extend(&cycle, EdgeView::full(), &mut st, None, &Counters::new());
            let in_set: Vec<bool> = st.iter().map(|&s| s == status::IN).collect();
            check_maximal_independent_set(&cycle, &in_set)
                .unwrap_or_else(|e| panic!("oriented MIS @ {t} threads: {e}"));
        });
    }
}

/// Regression for the shim's `find_any` early-exit path as the verifiers
/// use it: a planted violation must be caught at every pool width (any
/// witness is acceptable — the contract is any-match, not first-match).
#[test]
fn verifiers_catch_planted_violations_at_every_width() {
    let g = rgg();
    let mut color = jp_color(&g, 5, &Counters::new());
    check_coloring(&g, &color).unwrap();
    let e = g.edge_list()[g.num_edges() / 2];
    color[e[0] as usize] = 3;
    color[e[1] as usize] = 3;

    let mate = maximal_matching(&g, MmAlgorithm::Baseline, Arch::Cpu, 5).mate;
    let mut broken_mate = mate.clone();
    // Unmatch one matched pair: edge (v, mate[v]) then extends the matching.
    let v = (0..g.num_vertices()).find(|&v| mate[v] != INVALID).unwrap();
    let w = mate[v] as usize;
    broken_mate[v] = INVALID;
    broken_mate[w] = INVALID;

    for &t in &thread_axis() {
        with_threads(t, || {
            assert!(
                check_coloring(&g, &color).is_err(),
                "planted monochromatic edge missed @ {t} threads"
            );
            assert!(
                check_maximal_matching(&g, &broken_mate).is_err(),
                "planted free edge missed @ {t} threads"
            );
            // The untouched results still pass at this width.
            check_maximal_matching(&g, &mate).unwrap();
        });
    }
}

/// Stress: the paper's two headline pipelines, repeated at the widest pool
/// on a ~50k-vertex graph, behind a watchdog so a deadlock fails fast
/// instead of hanging the suite. Every iteration must be verifier-clean.
#[test]
fn stress_mm_rand_and_mis_degk_at_max_threads() {
    let iters: usize = std::env::var("SBREAK_STRESS_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50);
    let threads = *thread_axis().last().unwrap();

    let (tx, rx) = std::sync::mpsc::channel();
    let worker = std::thread::spawn(move || {
        // Rgg23 at default scale is a 60k-vertex random geometric graph.
        let g = generate(GraphId::Rgg23, Scale::Default, 3);
        with_threads(threads, || {
            for i in 0..iters {
                let seed = 100 + i as u64;
                let r = maximal_matching(&g, MmAlgorithm::Rand { partitions: 10 }, Arch::Cpu, seed);
                check_maximal_matching(&g, &r.mate)
                    .unwrap_or_else(|e| panic!("MM-Rand iter {i}: {e}"));
                let m = maximal_independent_set(&g, MisAlgorithm::Degk { k: 2 }, Arch::Cpu, seed);
                check_maximal_independent_set(&g, &m.in_set)
                    .unwrap_or_else(|e| panic!("MIS-Deg2 iter {i}: {e}"));
            }
        });
        tx.send(()).ok();
    });

    match rx.recv_timeout(std::time::Duration::from_secs(600)) {
        Ok(()) => worker.join().expect("stress worker panicked"),
        Err(_) => panic!("stress test exceeded the 600 s watchdog (deadlock or livelock)"),
    }
}
