//! The differential fuzzing oracle, exercised end to end: a planted
//! solver bug must be caught and minimized (the harness self-validation
//! the CI smoke job also runs), and a short clean sweep of the real
//! solvers must report nothing. Full-budget sweeps run in CI via the
//! `fuzz_smoke` binary; these tests keep the harness honest under
//! `cargo test`.

use sb_fuzz::{run_fuzz, CaseFile, FuzzOptions, Mutation};

fn wide() -> usize {
    std::env::var("SBREAK_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(4)
        .max(1)
}

fn quick(mutation: Mutation, max_cases: usize) -> FuzzOptions {
    FuzzOptions {
        master_seed: 23,
        max_cases: Some(max_cases),
        wide_threads: wide(),
        seeds_per_config: 1,
        mutation,
        max_counterexamples: 1,
        shrink_evals: 300,
        ..FuzzOptions::default()
    }
}

#[test]
fn planted_bug_is_caught_shrunk_and_replayable() {
    let dir = std::env::temp_dir().join("sb-fuzz-test-cases");
    let report = run_fuzz(&FuzzOptions {
        out_dir: Some(dir.clone()),
        ..quick(Mutation::CorruptMatching, 40)
    });
    let cex = report
        .counterexamples
        .first()
        .expect("planted matching bug must be caught");
    assert_eq!(cex.kind, "validity");
    assert!(cex.shrunk.n <= 8, "shrunk to {} vertices", cex.shrunk.n);

    // The written case file parses back to the minimized graph, and its
    // regression skeleton names the failing configuration.
    let path = cex.case_path.as_ref().expect("case file written");
    let case = CaseFile::load(path).unwrap();
    assert_eq!(case.n, cex.shrunk.n);
    assert_eq!(case.edges, cex.shrunk.edges);
    assert!(cex.regression.contains(&cex.config));
    std::fs::remove_file(path).ok();
}

#[test]
fn short_clean_sweep_reports_zero_counterexamples() {
    let report = run_fuzz(&quick(Mutation::None, 60));
    assert_eq!(report.cases_run, 60);
    assert!(
        report.counterexamples.is_empty(),
        "unexpected counterexample: {:?}",
        report.counterexamples[0]
    );
}
