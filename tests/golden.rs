//! Golden-output tests: pin the schema of every `results/*` writer and
//! the bytes of the deterministic tables. Any schema change — a renamed
//! column, a reordered header, a new table — fails here first.
//!
//! Intentional changes are blessed, never hand-edited:
//!
//! ```text
//! SBREAK_BLESS=1 cargo test --test golden
//! ```

use sb_bench::harness::{load_suite, BenchConfig};
use sb_bench::{runners, schemas};
use sb_core::coloring::ColorAlgorithm;
use sb_core::common::{Arch, FrontierMode};
use sb_core::matching::MmAlgorithm;
use sb_core::mis::MisAlgorithm;
use sb_datasets::suite::Scale;
use sb_engine::protocol::{MutateParams, SolveParams};
use sb_engine::{
    run_batch_compare, BatchOptions, EngineConfig, JobSpec, ServeConfig, Server, Solver,
};
use sb_metrics::JsonValue;
use std::fs;
use std::path::{Path, PathBuf};
use symmetry_breaking::loadgen::{run_loadgen, LoadgenOptions};

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Compare `actual` against the checked-in golden file, or rewrite the
/// golden file when `SBREAK_BLESS` is set.
fn check_golden(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("SBREAK_BLESS").is_some() {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, actual).unwrap();
        eprintln!("blessed {}", path.display());
        return;
    }
    let expected = match fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => panic!(
            "cannot read golden file {}: {e}\n\
             run `SBREAK_BLESS=1 cargo test --test golden` to generate it",
            path.display()
        ),
    };
    if expected != actual {
        let (line, want, got) = first_diff(&expected, actual);
        panic!(
            "{name} diverges from its golden file at line {line}:\n\
             \x20 golden: {want:?}\n\
             \x20 actual: {got:?}\n\
             If this schema change is intentional, regenerate with \
             `SBREAK_BLESS=1 cargo test --test golden` and commit the diff."
        );
    }
}

fn first_diff(a: &str, b: &str) -> (usize, String, String) {
    for (i, (la, lb)) in a.lines().zip(b.lines()).enumerate() {
        if la != lb {
            return (i + 1, la.into(), lb.into());
        }
    }
    let (an, bn) = (a.lines().count(), b.lines().count());
    (
        an.min(bn) + 1,
        format!("<{an} lines>"),
        format!("<{bn} lines>"),
    )
}

/// Blank out the value of each volatile (timing-derived) key in the
/// flat `"key":"value"` JSON the reports write, keeping the structure.
fn mask_values(body: &str, keys: &[&str]) -> String {
    let mut out = body.to_string();
    for key in keys {
        let pat = format!("\"{key}\":\"");
        let mut masked = String::with_capacity(out.len());
        let mut rest = out.as_str();
        while let Some(i) = rest.find(&pat) {
            let start = i + pat.len();
            masked.push_str(&rest[..start]);
            masked.push('#');
            let tail = &rest[start..];
            let end = tail.find('"').expect("unterminated JSON string");
            rest = &tail[end..];
        }
        masked.push_str(rest);
        out = masked;
    }
    out
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sbreak-golden-{tag}"));
    fs::remove_dir_all(&dir).ok();
    fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn schema_registry_is_pinned() {
    // Every results/* writer declares its table in sb_bench::schemas; this
    // pins the full registry (names, titles, headers) in one file.
    check_golden("schema_registry.txt", &schemas::render_registry());
}

#[test]
fn table2_csv_bytes_are_pinned_at_tiny_scale() {
    // Table II is pure graph statistics — no wall-clock columns — so the
    // whole CSV is a deterministic function of (scale, seed). Pin it.
    let cfg = BenchConfig {
        scale: Scale::Factor(0.05),
        ..BenchConfig::default()
    };
    let suite = load_suite(&cfg);
    let table = runners::table2(&suite);
    let dir = scratch("table2");
    table.save_csv(&dir, "table2").unwrap();
    let csv = fs::read_to_string(dir.join("table2.csv")).unwrap();
    check_golden("table2_tiny.csv", &csv);

    // The JSON twin shares the bytes-level guarantee.
    table.save_json(&dir, "table2").unwrap();
    let json = fs::read_to_string(dir.join("table2.json")).unwrap();
    check_golden("table2_tiny.json", &json);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn engine_batch_report_json_shape_is_pinned() {
    // Three problems on one graph through the engine with a fresh-reference
    // comparison: everything but the wall-clock numbers is deterministic.
    // Mask the timing values, pin the rest (keys, order, labels, cache
    // accounting, outcome strings).
    let job = |label: &str, solver: Solver| JobSpec {
        label: label.to_string(),
        graph: "gen:lp1".to_string(),
        scale: 0.05,
        graph_seed: Some(42),
        solver,
        arch: Arch::Cpu,
        frontier: FrontierMode::Compact,
        seed: 42,
        threads: None,
        timeout_ms: None,
    };
    let jobs = [
        job("mm", Solver::Mm(MmAlgorithm::Rand { partitions: 4 })),
        job("color", Solver::Color(ColorAlgorithm::Degk { k: 2 })),
        job("mis", Solver::Mis(MisAlgorithm::Degk { k: 2 })),
    ];
    let report = run_batch_compare(&jobs, EngineConfig::default(), &BatchOptions::default())
        .expect("batch must run");
    assert!(report.all_ok(), "{:?}", report.jobs);

    let dir = scratch("engine-report");
    let path = dir.join("BENCH_engine.json");
    report.save_json(&path).unwrap();
    let body = fs::read_to_string(&path).unwrap();

    // Every schema key must appear verbatim before masking.
    for key in sb_engine::report::RECORD_KEYS {
        assert!(body.contains(&format!("\"{key}\":")), "missing key {key}");
    }
    let masked = mask_values(
        &body,
        &[
            "decompose_ms",
            "solve_ms",
            "wall_ms",
            "fresh_wall_ms",
            "speedup",
        ],
    );
    check_golden("bench_engine_shape.json", &masked);
    fs::remove_dir_all(&dir).ok();
}

/// Render a parsed JSON document as one `path: kind` line per leaf, in
/// document order. Strings keep their value (they are all deterministic
/// in the serve stats document); numbers and booleans reduce to their
/// kind, so wall-clock values can't destabilise the golden file.
fn render_shape(value: &JsonValue, path: &str, out: &mut String) {
    match value {
        JsonValue::Obj(members) => {
            for (key, v) in members {
                let child = if path.is_empty() {
                    key.clone()
                } else {
                    format!("{path}.{key}")
                };
                render_shape(v, &child, out);
            }
        }
        JsonValue::Arr(items) => {
            for (i, v) in items.iter().enumerate() {
                render_shape(v, &format!("{path}[{i}]"), out);
            }
        }
        JsonValue::Str(s) => out.push_str(&format!("{path}: str {s:?}\n")),
        JsonValue::Num(_) => out.push_str(&format!("{path}: num\n")),
        JsonValue::Bool(_) => out.push_str(&format!("{path}: bool\n")),
        JsonValue::Null => out.push_str(&format!("{path}: null\n")),
    }
}

#[test]
fn serve_stats_shape_is_pinned() {
    // Drive a fixed two-tenant workload through a real server, then pin
    // the shape of the `stats` document: every key path, the tenant
    // listing, and the per-phase latency key set are deterministic; only
    // the measured numbers vary, and those reduce to `num`.
    let server = Server::spawn(ServeConfig::default()).expect("bind loopback");
    let mut client = sb_engine::Client::connect(server.addr()).unwrap();

    let mut job = SolveParams::new("gen:lp1", "color", "degk:2");
    job.scale = 0.05;
    job.graph_seed = Some(42);
    job.seed = 11;
    job.id = "g1".into();
    job.tenant = "tenant-a".into();
    assert_eq!(client.solve(&job).unwrap().status(), "ok");
    job.tenant = "tenant-b".into();
    assert_eq!(client.solve(&job).unwrap().status(), "ok");
    let mut mm = job.clone();
    mm.problem = "mm".into();
    mm.algo = "rand:4".into();
    assert_eq!(client.solve(&mm).unwrap().status(), "ok");

    // One mutate stream (prime, then a repair) so the repairs block and
    // the repair phase-latency key are exercised in the pinned shape.
    let mut mutate = MutateParams::new("gen:lp1", "mis", "degk:2", "");
    mutate.solve.scale = 0.05;
    mutate.solve.graph_seed = Some(42);
    mutate.solve.seed = 11;
    mutate.solve.id = "m1".into();
    mutate.solve.tenant = "tenant-a".into();
    assert_eq!(client.mutate(&mutate).unwrap().status(), "ok");
    mutate.edits = "+0-5,-0-1".into();
    assert_eq!(client.mutate(&mutate).unwrap().status(), "ok");

    let stats = client.stats().unwrap();
    let mut shape = String::new();
    render_shape(&stats.raw, "", &mut shape);
    check_golden("serve_stats_shape.txt", &shape);

    server.shutdown();
    server.join();
}

#[test]
fn bench_serve_report_json_shape_is_pinned() {
    // The loadgen report at a fixed tiny workload: request/outcome counts
    // and cache-hit columns are deterministic (single client, generous
    // queue, no deadlines); only the latency/throughput cells vary.
    let summary = run_loadgen(&LoadgenOptions {
        clients: 1,
        repeats: 2,
        scale: 0.05,
        ..LoadgenOptions::default()
    })
    .expect("loadgen runs");
    assert_eq!(summary.warm.ok, 6, "deterministic warm request count");

    let dir = scratch("bench-serve");
    summary.table.save_json(&dir, "BENCH_serve").unwrap();
    let body = fs::read_to_string(dir.join("BENCH_serve.json")).unwrap();
    let masked = mask_values(&body, &["p50 ms", "p99 ms", "mean ms", "rps"]);
    check_golden("bench_serve_shape.json", &masked);
    fs::remove_dir_all(&dir).ok();
}
