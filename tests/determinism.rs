//! Reproducibility: every randomized component is a pure function of its
//! seed, independent of thread scheduling (counter-based randomness), and
//! different seeds genuinely vary the answers.
//!
//! Since the rayon layer runs a real worker pool, "independent of thread
//! scheduling" is an actual claim about concurrent interleavings, not a
//! vacuous one — the `*_thread_invariant` tests below pin solver output
//! and round/launch counts at 1 vs N threads. `SBREAK_TEST_THREADS` caps
//! the N used (CI runs 1 and 4).

use symmetry_breaking::core::coloring::jp::jp_color;
use symmetry_breaking::par::{
    schedule_strategy, set_schedule_strategy, with_threads, ScheduleStrategy,
};
use symmetry_breaking::prelude::*;

fn graph() -> Graph {
    generate(GraphId::CoAuthorsCiteseer, Scale::Tiny, 99)
}

/// Widest pool for the 1-vs-N comparisons.
fn wide() -> usize {
    std::env::var("SBREAK_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(4)
        .max(1)
}

#[test]
fn generators_deterministic_across_all_suite_graphs() {
    for id in GraphId::ALL {
        let a = generate(id, Scale::Tiny, 5);
        let b = generate(id, Scale::Tiny, 5);
        assert_eq!(a, b, "{id:?} not reproducible");
    }
}

#[test]
fn rand_decomposition_is_seed_pure() {
    let g = graph();
    let a = decompose_rand(&g, 6, 11, &Counters::new());
    let b = decompose_rand(&g, 6, 11, &Counters::new());
    assert_eq!(a.part, b.part);
    assert_eq!(a.class, b.class);
    let c = decompose_rand(&g, 6, 12, &Counters::new());
    assert_ne!(a.part, c.part);
}

#[test]
fn solvers_reproducible_per_seed() {
    let g = graph();
    for arch in [Arch::Cpu, Arch::GpuSim] {
        let m1 = maximal_matching(&g, MmAlgorithm::Rand { partitions: 5 }, arch, 4).mate;
        let m2 = maximal_matching(&g, MmAlgorithm::Rand { partitions: 5 }, arch, 4).mate;
        assert_eq!(m1, m2, "matching not reproducible on {arch}");

        let i1 = maximal_independent_set(&g, MisAlgorithm::Baseline, arch, 4).in_set;
        let i2 = maximal_independent_set(&g, MisAlgorithm::Baseline, arch, 4).in_set;
        assert_eq!(i1, i2, "MIS not reproducible on {arch}");
    }
}

#[test]
fn different_seeds_differ() {
    let g = graph();
    let i1 = maximal_independent_set(&g, MisAlgorithm::Baseline, Arch::Cpu, 1).in_set;
    let i2 = maximal_independent_set(&g, MisAlgorithm::Baseline, Arch::Cpu, 2).in_set;
    assert_ne!(i1, i2, "seeds should perturb Luby's choices");
}

#[test]
fn seed_deterministic_solvers_thread_invariant() {
    // Solvers documented as seed-deterministic: their per-round choices
    // come from seeded hashes or double-buffered local-extremum rules, so
    // any interleaving of a round commits the same decisions. VB coloring
    // is deliberately absent — its speculative color-then-fix loop resolves
    // conflicts in an interleaving-dependent order.
    let g = graph();
    let n = wide();

    for arch in [Arch::Cpu, Arch::GpuSim] {
        // GM (CPU) / LMAX (GPU-sim), and the composites over deterministic
        // decompositions (RAND hash-partition, DEGk classification).
        for algo in [
            MmAlgorithm::Baseline,
            MmAlgorithm::Rand { partitions: 5 },
            MmAlgorithm::Degk { k: 2 },
        ] {
            let one = with_threads(1, || maximal_matching(&g, algo, arch, 4).mate);
            let many = with_threads(n, || maximal_matching(&g, algo, arch, 4).mate);
            assert_eq!(one, many, "{algo:?} on {arch}: 1 vs {n} threads differ");
        }
        for algo in [MisAlgorithm::Baseline, MisAlgorithm::Degk { k: 2 }] {
            let one = with_threads(1, || maximal_independent_set(&g, algo, arch, 4).in_set);
            let many = with_threads(n, || maximal_independent_set(&g, algo, arch, 4).in_set);
            assert_eq!(one, many, "{algo:?} on {arch}: 1 vs {n} threads differ");
        }
    }

    // Jones–Plassmann: double-buffered local maxima, deterministic per seed.
    let one = with_threads(1, || jp_color(&g, 4, &Counters::new()));
    let many = with_threads(n, || jp_color(&g, 4, &Counters::new()));
    assert_eq!(one, many, "JP coloring: 1 vs {n} threads differ");
}

#[test]
fn round_and_launch_counts_thread_invariant() {
    // Round counts (and BSP kernel launches on the GPU-sim) are properties
    // of the algorithm and seed, not of the pool width: a round launches
    // the same kernels no matter how many threads sweep the grid.
    let g = graph();
    let n = wide();

    let lmax = |threads| {
        with_threads(threads, || {
            maximal_matching(&g, MmAlgorithm::Baseline, Arch::GpuSim, 7)
                .stats
                .counters
        })
    };
    let (one, many) = (lmax(1), lmax(n));
    assert_eq!(one.rounds, many.rounds, "LMAX rounds vary with threads");
    assert_eq!(
        one.kernel_launches, many.kernel_launches,
        "LMAX kernel launches vary with threads"
    );

    // sb-trace sees the same per-phase round records at any width.
    let traced_rounds = |threads: usize| {
        with_threads(threads, || {
            let sink = std::sync::Arc::new(TraceSink::enabled());
            maximal_independent_set_traced(
                &g,
                MisAlgorithm::Baseline,
                Arch::Cpu,
                7,
                Some(sink.clone()),
            );
            symmetry_breaking::trace::rounds_per_phase(&sink.events())
        })
    };
    assert_eq!(
        traced_rounds(1),
        traced_rounds(n),
        "traced round counts vary with threads"
    );
}

#[test]
fn productive_round_counts_frontier_mode_invariant() {
    // Dense and compact run the same productive rounds; only the dense
    // termination sweep (recorded with `vacuous: true`) may differ — the
    // compact form skips it when its worklist empties first. With vacuous
    // rounds discounted, per-phase round counts carry no mode carve-outs:
    // the same pin holds for the full-view baseline and the masked
    // composite phases, at any thread count.
    let g = graph();
    let n = wide();

    let traced = |algo: MmAlgorithm, mode: FrontierMode, threads: usize| {
        with_threads(threads, || {
            let sink = std::sync::Arc::new(TraceSink::enabled());
            let opts = SolveOpts {
                trace: Some(sink.clone()),
                frontier: mode,
            };
            maximal_matching_opts(&g, algo, Arch::GpuSim, 7, &opts);
            symmetry_breaking::trace::productive_rounds_per_phase(&sink.events())
        })
    };
    for algo in [
        MmAlgorithm::Baseline,
        MmAlgorithm::Rand { partitions: 5 },
        MmAlgorithm::Degk { k: 2 },
    ] {
        let dense = traced(algo, FrontierMode::Dense, 1);
        for (mode, threads) in [
            (FrontierMode::Dense, n),
            (FrontierMode::Compact, 1),
            (FrontierMode::Compact, n),
            (FrontierMode::Bitset, 1),
            (FrontierMode::Bitset, n),
        ] {
            assert_eq!(
                dense,
                traced(algo, mode, threads),
                "{algo:?}: productive rounds differ ({mode} at {threads} threads)"
            );
        }
    }
}

#[test]
fn solver_output_invariant_under_both_claim_strategies() {
    // The pool's claim discipline (work-stealing deques vs the global
    // counter baseline) redistributes pieces across workers, never the
    // decisions made inside them: solver output must be identical at any
    // width under either scheduler, in every frontier mode. This is the
    // determinism pin the stealing scheduler ships behind.
    let g = graph();
    let n = wide();
    let before = schedule_strategy();

    let reference = maximal_independent_set(&g, MisAlgorithm::Baseline, Arch::Cpu, 4).in_set;
    for strat in [ScheduleStrategy::Stealing, ScheduleStrategy::GlobalCounter] {
        set_schedule_strategy(strat);
        for mode in [
            FrontierMode::Dense,
            FrontierMode::Compact,
            FrontierMode::Bitset,
        ] {
            let solve = |threads| {
                with_threads(threads, || {
                    maximal_independent_set_opts(
                        &g,
                        MisAlgorithm::Baseline,
                        Arch::Cpu,
                        4,
                        &SolveOpts::with_mode(mode),
                    )
                    .in_set
                })
            };
            let one = solve(1);
            let many = solve(n);
            assert_eq!(one, many, "{strat:?}/{mode}: 1 vs {n} threads differ");
            assert_eq!(
                one, reference,
                "{strat:?}/{mode} diverged from the default-strategy output"
            );
        }
        let one = with_threads(1, || {
            maximal_matching(&g, MmAlgorithm::Degk { k: 2 }, Arch::Cpu, 4).mate
        });
        let many = with_threads(n, || {
            maximal_matching(&g, MmAlgorithm::Degk { k: 2 }, Arch::Cpu, 4).mate
        });
        assert_eq!(one, many, "{strat:?}: GM/degk 1 vs {n} threads differ");
    }
    set_schedule_strategy(before);
}

#[test]
fn deterministic_algorithms_ignore_seed() {
    // GM (lowest-id) and the oriented MIS are deterministic by design; the
    // seed only affects the decomposition in their composites.
    let g = graph();
    let a = maximal_matching(&g, MmAlgorithm::Baseline, Arch::Cpu, 1).mate;
    let b = maximal_matching(&g, MmAlgorithm::Baseline, Arch::Cpu, 2).mate;
    assert_eq!(a, b, "GM is seedless and must not vary");
}
