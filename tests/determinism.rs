//! Reproducibility: every randomized component is a pure function of its
//! seed, independent of thread scheduling (counter-based randomness), and
//! different seeds genuinely vary the answers.

use symmetry_breaking::prelude::*;

fn graph() -> Graph {
    generate(GraphId::CoAuthorsCiteseer, Scale::Tiny, 99)
}

#[test]
fn generators_deterministic_across_all_suite_graphs() {
    for id in GraphId::ALL {
        let a = generate(id, Scale::Tiny, 5);
        let b = generate(id, Scale::Tiny, 5);
        assert_eq!(a, b, "{id:?} not reproducible");
    }
}

#[test]
fn rand_decomposition_is_seed_pure() {
    let g = graph();
    let a = decompose_rand(&g, 6, 11, &Counters::new());
    let b = decompose_rand(&g, 6, 11, &Counters::new());
    assert_eq!(a.part, b.part);
    assert_eq!(a.class, b.class);
    let c = decompose_rand(&g, 6, 12, &Counters::new());
    assert_ne!(a.part, c.part);
}

#[test]
fn solvers_reproducible_per_seed() {
    let g = graph();
    for arch in [Arch::Cpu, Arch::GpuSim] {
        let m1 = maximal_matching(&g, MmAlgorithm::Rand { partitions: 5 }, arch, 4).mate;
        let m2 = maximal_matching(&g, MmAlgorithm::Rand { partitions: 5 }, arch, 4).mate;
        assert_eq!(m1, m2, "matching not reproducible on {arch}");

        let i1 = maximal_independent_set(&g, MisAlgorithm::Baseline, arch, 4).in_set;
        let i2 = maximal_independent_set(&g, MisAlgorithm::Baseline, arch, 4).in_set;
        assert_eq!(i1, i2, "MIS not reproducible on {arch}");
    }
}

#[test]
fn different_seeds_differ() {
    let g = graph();
    let i1 = maximal_independent_set(&g, MisAlgorithm::Baseline, Arch::Cpu, 1).in_set;
    let i2 = maximal_independent_set(&g, MisAlgorithm::Baseline, Arch::Cpu, 2).in_set;
    assert_ne!(i1, i2, "seeds should perturb Luby's choices");
}

#[test]
fn deterministic_algorithms_ignore_seed() {
    // GM (lowest-id) and the oriented MIS are deterministic by design; the
    // seed only affects the decomposition in their composites.
    let g = graph();
    let a = maximal_matching(&g, MmAlgorithm::Baseline, Arch::Cpu, 1).mate;
    let b = maximal_matching(&g, MmAlgorithm::Baseline, Arch::Cpu, 2).mate;
    assert_eq!(a, b, "GM is seedless and must not vary");
}
