//! Property tests for the dataset stand-ins: every generator must produce
//! structurally valid, connected, seed-deterministic graphs at any scale,
//! and hold its class-defining shape invariants.

use proptest::prelude::*;
use symmetry_breaking::prelude::*;

fn arb_id() -> impl Strategy<Value = GraphId> {
    proptest::sample::select(GraphId::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generators_valid_connected_deterministic(
        id in arb_id(),
        seed in 0u64..1000,
        factor in 0.02f64..0.08,
    ) {
        let g = generate(id, Scale::Factor(factor), seed);
        g.validate().unwrap();
        prop_assert!(g.num_vertices() > 0);
        // The paper connects every input graph.
        let c = symmetry_breaking::graph::components::components_sequential(&g, None);
        prop_assert_eq!(c.count, 1, "{:?} must be connected", id);
        // Bit-identical regeneration.
        let g2 = generate(id, Scale::Factor(factor), seed);
        prop_assert_eq!(g, g2);
    }

    #[test]
    fn rgg_stays_bridge_free_and_degree2_free(seed in 0u64..50) {
        let g = generate(GraphId::Rgg23, Scale::Factor(0.05), seed);
        let s = GraphStats::compute(&g);
        prop_assert!(s.pct_deg_le2 < 5.0, "%deg2 = {}", s.pct_deg_le2);
        let bridges = symmetry_breaking::decompose::bridge::find_bridges(
            &g,
            &Counters::new(),
        );
        prop_assert!(
            (bridges.len() as f64) < 0.02 * g.num_edges() as f64,
            "rgg should be essentially bridge-free, got {}",
            bridges.len()
        );
    }

    #[test]
    fn low_degree_classes_stay_low_degree(seed in 0u64..50) {
        for id in [GraphId::Lp1, GraphId::GermanyOsm, GraphId::Webbase1M] {
            let g = generate(id, Scale::Factor(0.05), seed);
            let s = GraphStats::compute(&g);
            prop_assert!(
                s.pct_deg_le2 > 60.0,
                "{:?}: %deg2 = {}",
                id,
                s.pct_deg_le2
            );
        }
    }

    #[test]
    fn kron_keeps_heavy_tail(seed in 0u64..30) {
        let g = generate(GraphId::KronLogn20, Scale::Factor(0.12), seed);
        let s = GraphStats::compute(&g);
        prop_assert!(
            s.max_degree as f64 > 5.0 * s.avg_degree,
            "max {} vs avg {}",
            s.max_degree,
            s.avg_degree
        );
        prop_assert!(s.avg_degree > 20.0, "kron must stay dense: {}", s.avg_degree);
    }

    #[test]
    fn scale_factor_scales_vertex_count(id in arb_id(), seed in 0u64..20) {
        let small = generate(id, Scale::Factor(0.03), seed);
        let large = generate(id, Scale::Factor(0.12), seed);
        prop_assert!(
            large.num_vertices() > small.num_vertices(),
            "{:?}: {} !> {}",
            id,
            large.num_vertices(),
            small.num_vertices()
        );
    }
}
