//! The reproduction as a test suite: the paper's qualitative findings,
//! asserted on counters (not wall-clock) at test scale so they are stable
//! on any host and pinned against regressions.

use symmetry_breaking::prelude::*;

const SEED: u64 = 2017; // the paper's year, why not

/// §III-C — the *vain tendency*: GM's lowest-id proposals serialize on the
/// spatially-numbered rgg instances; MM-Rand's sparsification breaks the
/// chains. Measured in proposal rounds.
#[test]
fn vain_tendency_and_its_rand_cure() {
    let g = generate(GraphId::Rgg23, Scale::Factor(0.15), SEED);
    let base = maximal_matching(&g, MmAlgorithm::Baseline, Arch::Cpu, SEED);
    let rand = maximal_matching(&g, MmAlgorithm::Rand { partitions: 10 }, Arch::Cpu, SEED);
    check_maximal_matching(&g, &base.mate).unwrap();
    check_maximal_matching(&g, &rand.mate).unwrap();
    assert!(
        base.stats.counters.rounds >= 4 * rand.stats.counters.rounds,
        "expected GM rounds ({}) ≫ MM-Rand rounds ({})",
        base.stats.counters.rounds,
        rand.stats.counters.rounds
    );
}

/// §III-C footnote: the vain tendency is a property of the deterministic
/// tie-breaking — random priorities (Blelloch's original rule) already
/// remove it without any decomposition.
#[test]
fn vain_tendency_is_the_tie_break_rule() {
    use symmetry_breaking::core::matching::gm::{gm_extend, gm_random_extend};
    use symmetry_breaking::graph::EdgeView;
    let g = generate(GraphId::Rgg23, Scale::Factor(0.1), SEED);

    let c_det = Counters::new();
    let mut m1 = vec![INVALID; g.num_vertices()];
    gm_extend(&g, EdgeView::full(), &mut m1, None, &c_det);

    let c_rnd = Counters::new();
    let mut m2 = vec![INVALID; g.num_vertices()];
    gm_random_extend(&g, EdgeView::full(), &mut m2, None, SEED, &c_rnd);

    assert!(
        c_det.rounds() >= 10 * c_rnd.rounds(),
        "lowest-id rounds ({}) should dwarf random-priority rounds ({})",
        c_det.rounds(),
        c_rnd.rounds()
    );
}

/// §III-D — the RAND partition count matters: the induced edge fraction is
/// 1/k, so k near the average degree balances phase-1 sparsity against
/// phase-2 cross work. On the kron stand-in (avg degree ≈ 85), k = 10 leaves
/// the induced union far denser than k = 100 does.
#[test]
fn kron_needs_more_partitions() {
    let g = generate(GraphId::KronLogn20, Scale::Factor(0.25), SEED);
    let d10 = decompose_rand(&g, 10, SEED, &Counters::new());
    let d100 = decompose_rand(&g, 100, SEED, &Counters::new());
    // Induced average degree at k=10 is still high (≈ avg/10 ≈ 8.5),
    // at k=100 it is below 1 — the paper's reason for raising k.
    let n = g.num_vertices() as f64;
    assert!(2.0 * d10.m_induced as f64 / n > 4.0);
    assert!(2.0 * d100.m_induced as f64 / n < 2.0);
}

/// Figure 2 — cost ordering of the decompositions, in accounted work:
/// DEG2 and RAND are single classify passes; BRIDGE pays BFS rounds plus
/// LCA-walk gathers on top.
#[test]
fn decomposition_cost_ordering() {
    let g = generate(GraphId::GermanyOsm, Scale::Factor(0.3), SEED);
    let c_rand = Counters::new();
    decompose_rand(&g, 10, SEED, &c_rand);
    let c_degk = Counters::new();
    decompose_degk(&g, 2, &c_degk);
    let c_bridge = Counters::new();
    decompose_bridge(&g, &c_bridge);

    let work = |c: &Counters| c.work_items() + c.edges_scanned();
    assert!(
        work(&c_bridge) > 3 * work(&c_rand),
        "BRIDGE ({}) should cost several RANDs ({})",
        work(&c_bridge),
        work(&c_rand)
    );
    assert!(work(&c_bridge) > 3 * work(&c_degk));
    // BFS depth on the high-pseudo-diameter road graph dominates rounds.
    assert!(c_bridge.rounds() > 20 * c_rand.rounds().max(1));
}

/// §V-C — MIS-Deg2 wins on degree-≤2-heavy graphs and not on rgg, in
/// accounted work against the classic full-sweep Luby baseline. The
/// paper's cost structure is that of its era's dense baselines, so this
/// pin holds `FrontierMode::Dense` fixed — the compacted form narrows
/// exactly this gap (DESIGN.md §10, `ablate_frontier`).
#[test]
fn mis_deg2_crossover() {
    let dense = SolveOpts::with_mode(FrontierMode::Dense);
    let work = |r: &symmetry_breaking::prelude::MisRun| {
        r.stats.counters.work_items + r.stats.counters.edges_scanned
    };

    // lp1: > 90% of vertices have degree ≤ 2 → Deg2 must do less work.
    let lp1 = generate(GraphId::Lp1, Scale::Factor(0.4), SEED);
    let base = maximal_independent_set_opts(&lp1, MisAlgorithm::Baseline, Arch::Cpu, SEED, &dense);
    let deg2 =
        maximal_independent_set_opts(&lp1, MisAlgorithm::Degk { k: 2 }, Arch::Cpu, SEED, &dense);
    check_maximal_independent_set(&lp1, &base.in_set).unwrap();
    check_maximal_independent_set(&lp1, &deg2.in_set).unwrap();
    assert!(
        work(&deg2) < work(&base),
        "on lp1, MIS-Deg2 work ({}) should undercut LubyMIS ({})",
        work(&deg2),
        work(&base)
    );

    // rgg: no degree-≤2 vertices → the decomposition is pure overhead.
    let rgg = generate(GraphId::Rgg23, Scale::Factor(0.1), SEED);
    let base = maximal_independent_set_opts(&rgg, MisAlgorithm::Baseline, Arch::Cpu, SEED, &dense);
    let deg2 =
        maximal_independent_set_opts(&rgg, MisAlgorithm::Degk { k: 2 }, Arch::Cpu, SEED, &dense);
    assert!(
        work(&deg2) >= work(&base),
        "on rgg, MIS-Deg2 ({}) cannot beat LubyMIS ({})",
        work(&deg2),
        work(&base)
    );
}

/// §IV (Algorithm 9) — COLOR-Degk's structural guarantee: the low side is
/// colored with at most k+1 fresh colors above max(C_H), so the total
/// palette is |colors(G_H)| + k + 1 at worst.
#[test]
fn color_degk_palette_bound() {
    for id in [GraphId::Lp1, GraphId::GermanyOsm, GraphId::Webbase1M] {
        let g = generate(id, Scale::Tiny, SEED);
        let run = vertex_coloring(&g, ColorAlgorithm::Degk { k: 2 }, Arch::Cpu, SEED);
        check_coloring(&g, &run.color).unwrap();
        let d = decompose_degk(&g, 2, &Counters::new());
        let high_colors: std::collections::BTreeSet<u32> = g
            .vertices()
            .filter(|&v| d.is_high[v as usize])
            .map(|v| run.color[v as usize])
            .collect();
        assert!(
            run.num_colors() <= high_colors.len() + 3,
            "{id:?}: {} colors vs {} high colors + 3",
            run.num_colors(),
            high_colors.len()
        );
    }
}

/// §V-C — MIS-Bridge is never competitive: its decomposition alone costs
/// about as much as solving the problem.
#[test]
fn mis_bridge_noncompetitive() {
    let g = generate(GraphId::RoadCentral, Scale::Factor(0.3), SEED);
    let base = maximal_independent_set(&g, MisAlgorithm::Baseline, Arch::Cpu, SEED);
    let bridge = maximal_independent_set(&g, MisAlgorithm::Bridge, Arch::Cpu, SEED);
    let work = |r: &symmetry_breaking::prelude::MisRun| {
        r.stats.counters.work_items + r.stats.counters.edges_scanned
    };
    assert!(work(&bridge) > work(&base));
}

/// The GPU cost model orders algorithms by their communication structure:
/// for matching on the heavy-tailed kron stand-in, MM-Rand's modeled device
/// time undercuts LMAX's (the paper's Figure 3b direction), while MM-Bridge
/// stays above both. Pinned against the era's dense baselines (see
/// `mis_deg2_crossover`): compacted worklists shrink LMAX's full-sweep
/// traffic, which is the very overhead the paper's decompositions attack.
#[test]
fn gpu_model_matching_ordering_on_kron() {
    let dense = SolveOpts::with_mode(FrontierMode::Dense);
    let g = generate(GraphId::KronLogn20, Scale::Factor(0.5), SEED);
    let base = maximal_matching_opts(&g, MmAlgorithm::Baseline, Arch::GpuSim, SEED, &dense);
    let rand = maximal_matching_opts(
        &g,
        MmAlgorithm::Rand { partitions: 100 },
        Arch::GpuSim,
        SEED,
        &dense,
    );
    let bridge = maximal_matching_opts(&g, MmAlgorithm::Bridge, Arch::GpuSim, SEED, &dense);
    let ms = |r: &MatchingRun| r.stats.modeled_gpu_ms();
    assert!(
        ms(&rand) < ms(&base),
        "kron GPU: MM-Rand modeled {:.3} ms should beat LMAX {:.3} ms",
        ms(&rand),
        ms(&base)
    );
    assert!(ms(&bridge) > ms(&base));
}
