//! End-to-end tests of the sb-trace subsystem: JSONL replay fidelity,
//! round-record bookkeeping, and the paper's round-convergence claims
//! restated on trace evidence instead of raw counters.

use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;
use symmetry_breaking::graph::EdgeView;
use symmetry_breaking::prelude::*;
use symmetry_breaking::trace::{parse_jsonl, rounds_per_phase, total_delta, TraceEvent};

const SEED: u64 = 2017;

/// Serialize a sink's trace to a JSONL string.
fn to_jsonl(sink: &TraceSink) -> String {
    let mut buf = Vec::new();
    sink.write_jsonl(&mut buf).unwrap();
    String::from_utf8(buf).unwrap()
}

/// Rounds recorded under `phase`, zero if the phase never appears.
fn phase_rounds(events: &[TraceEvent], phase: &str) -> u64 {
    rounds_per_phase(events)
        .into_iter()
        .find(|(p, _)| p == phase)
        .map_or(0, |(_, c)| c)
}

/// Per-round sums over all round records:
/// (rounds, settled, edges_scanned, work_items), plus round 0's active size.
fn round_sums(events: &[TraceEvent]) -> (u64, u64, u64, u64, u64) {
    let mut rounds = 0;
    let mut settled = 0;
    let mut edges = 0;
    let mut work = 0;
    let mut first_active = 0;
    for e in events {
        if let TraceEvent::Round { record, .. } = e {
            if rounds == 0 {
                first_active = record.active;
            }
            rounds += 1;
            settled += record.settled;
            edges += record.edges_scanned;
            work += record.work_items;
        }
    }
    (rounds, settled, edges, work, first_active)
}

/// The acceptance check of the trace design: writing a run's trace to
/// JSONL, parsing it back, and summing the top-level span deltas must
/// reconstruct the run's final counter snapshot *exactly* — every counter
/// increment of every composite happens inside some top-level phase span.
#[test]
fn jsonl_replay_reconstructs_counter_totals() {
    let g = generate(GraphId::Lp1, Scale::Tiny, SEED);

    let mm_algos = [
        MmAlgorithm::Baseline,
        MmAlgorithm::Bridge,
        MmAlgorithm::Rand { partitions: 3 },
        MmAlgorithm::Degk { k: 2 },
    ];
    for algo in mm_algos {
        let sink = Arc::new(TraceSink::enabled());
        let run = maximal_matching_traced(&g, algo, Arch::Cpu, SEED, Some(sink.clone()));
        let events = parse_jsonl(&to_jsonl(&sink)).unwrap();
        assert_eq!(
            total_delta(&events),
            run.stats.counters.as_delta(),
            "matching {algo:?}: replayed span deltas must equal the run's counters"
        );
    }

    let color_algos = [
        ColorAlgorithm::Baseline,
        ColorAlgorithm::Rand { partitions: 2 },
        ColorAlgorithm::Degk { k: 2 },
    ];
    for algo in color_algos {
        let sink = Arc::new(TraceSink::enabled());
        let run = vertex_coloring_traced(&g, algo, Arch::Cpu, SEED, Some(sink.clone()));
        let events = parse_jsonl(&to_jsonl(&sink)).unwrap();
        assert_eq!(
            total_delta(&events),
            run.stats.counters.as_delta(),
            "coloring {algo:?}: replayed span deltas must equal the run's counters"
        );
    }

    let mis_algos = [
        MisAlgorithm::Baseline,
        MisAlgorithm::Rand { partitions: 3 },
        MisAlgorithm::Degk { k: 2 },
        MisAlgorithm::Bicc,
    ];
    for algo in mis_algos {
        let sink = Arc::new(TraceSink::enabled());
        let run = maximal_independent_set_traced(&g, algo, Arch::Cpu, SEED, Some(sink.clone()));
        let events = parse_jsonl(&to_jsonl(&sink)).unwrap();
        assert_eq!(
            total_delta(&events),
            run.stats.counters.as_delta(),
            "mis {algo:?}: replayed span deltas must equal the run's counters"
        );
    }
}

/// §III-C on trace evidence: on the spatially-numbered rgg stand-in, the
/// *cross-solve phase* of MM-Rand converges in strictly fewer rounds than
/// baseline GM's whole solve — the round records themselves, not
/// wall-clock, carry the claim.
#[test]
fn rand_cross_phase_beats_gm_rounds_on_trace() {
    let g = generate(GraphId::Rgg23, Scale::Factor(0.15), SEED);

    let base_sink = Arc::new(TraceSink::enabled());
    let base = maximal_matching_traced(
        &g,
        MmAlgorithm::Baseline,
        Arch::Cpu,
        SEED,
        Some(base_sink.clone()),
    );
    let rand_sink = Arc::new(TraceSink::enabled());
    let rand = maximal_matching_traced(
        &g,
        MmAlgorithm::Rand { partitions: 10 },
        Arch::Cpu,
        SEED,
        Some(rand_sink.clone()),
    );
    check_maximal_matching(&g, &base.mate).unwrap();
    check_maximal_matching(&g, &rand.mate).unwrap();

    let solve = phase_rounds(&base_sink.events(), "solve");
    let cross = phase_rounds(&rand_sink.events(), "cross-solve");
    assert!(solve > 0 && cross > 0, "both phases must record rounds");
    assert!(
        cross < solve,
        "MM-Rand cross-solve rounds ({cross}) must beat GM solve rounds ({solve})"
    );
    // The summary digest carries the same convergence evidence.
    let summary = rand_sink.summary().unwrap();
    assert_eq!(summary.total_rounds, round_sums(&rand_sink.events()).0);
}

/// Round indices are assigned by the sink: contiguous from 0 and monotone
/// within every span, across all solver layers of a decomposed run.
#[test]
fn round_indices_are_contiguous_and_monotone_per_span() {
    let g = generate(GraphId::Lp1, Scale::Tiny, SEED);
    let sink = Arc::new(TraceSink::enabled());
    maximal_independent_set_traced(
        &g,
        MisAlgorithm::Degk { k: 2 },
        Arch::Cpu,
        SEED,
        Some(sink.clone()),
    );

    let mut next: HashMap<Option<u32>, u64> = HashMap::new();
    let mut total = 0u64;
    for e in sink.events() {
        if let TraceEvent::Round { span, record, .. } = e {
            let expected = next.entry(span).or_insert(0);
            assert_eq!(
                record.round, *expected,
                "round index within span {span:?} must be contiguous from 0"
            );
            *expected += 1;
            total += 1;
        }
    }
    assert!(total > 0, "a decomposed MIS run must record rounds");
}

/// A disabled sink behaves exactly like no sink at all: same output, same
/// counters, no events, no summary.
#[test]
fn disabled_sink_matches_untraced_run() {
    let g = generate(GraphId::Lp1, Scale::Tiny, SEED);
    let plain = maximal_matching(&g, MmAlgorithm::Rand { partitions: 3 }, Arch::Cpu, SEED);
    let sink = Arc::new(TraceSink::disabled());
    let traced = maximal_matching_traced(
        &g,
        MmAlgorithm::Rand { partitions: 3 },
        Arch::Cpu,
        SEED,
        Some(sink.clone()),
    );
    assert_eq!(plain.mate, traced.mate);
    assert_eq!(
        plain.stats.counters.as_delta(),
        traced.stats.counters.as_delta()
    );
    assert!(sink.events().is_empty());
    assert!(sink.summary().is_none());
    assert!(traced.stats.trace.is_none());
}

/// Strategy: an arbitrary undirected graph with up to `nmax` vertices and
/// `mmax` raw edges (dedup may shrink).
fn arb_graph(nmax: usize, mmax: usize) -> impl Strategy<Value = Graph> {
    (2..nmax).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..mmax)
            .prop_map(move |edges| from_edge_list(n, &edges))
    })
}

/// Assert the per-round records of a direct solver sum to its final
/// counter snapshot: one record per round, every edge scan / work item
/// attributed to exactly one round, and the settled column summing to
/// `expected_settled` (how many items the solver decided in total).
fn assert_rounds_account_for(
    sink: &TraceSink,
    counters: &Counters,
    expected_settled: u64,
) -> Result<(), TestCaseError> {
    let snap = counters.snapshot();
    let (rounds, settled, edges, work, _) = round_sums(&sink.events());
    prop_assert_eq!(rounds, snap.rounds, "one round record per counted round");
    prop_assert_eq!(edges, snap.edges_scanned, "edge scans attributed to rounds");
    prop_assert_eq!(work, snap.work_items, "work items attributed to rounds");
    prop_assert_eq!(settled, expected_settled, "settled sums to items decided");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gm_round_records_sum_to_totals(g in arb_graph(80, 200)) {
        use symmetry_breaking::core::matching::gm::gm_extend;
        let sink = Arc::new(TraceSink::enabled());
        let c = Counters::with_trace(sink.clone());
        let mut mate = vec![INVALID; g.num_vertices()];
        gm_extend(&g, EdgeView::full(), &mut mate, None, &c);
        // GM drains its worklist completely: every initially-live vertex
        // (degree > 0) is eventually settled — matched or dropped.
        let live = g.vertices().filter(|&v| g.degree(v) > 0).count() as u64;
        assert_rounds_account_for(&sink, &c, live)?;
    }

    #[test]
    fn ii_round_records_sum_to_totals(g in arb_graph(80, 200), seed in 0u64..50) {
        use symmetry_breaking::core::matching::ii::ii_extend;
        let sink = Arc::new(TraceSink::enabled());
        let c = Counters::with_trace(sink.clone());
        let mut mate = vec![INVALID; g.num_vertices()];
        ii_extend(&g, EdgeView::full(), &mut mate, None, seed, &c);
        // II terminates when no live edge remains, which can strand
        // unmatched participants: settled sums to the matched count.
        let matched = mate.iter().filter(|&&m| m != INVALID).count() as u64;
        assert_rounds_account_for(&sink, &c, matched)?;
    }

    #[test]
    fn vb_round_records_sum_to_totals(g in arb_graph(80, 200)) {
        use symmetry_breaking::core::coloring::vb::vb_extend;
        let sink = Arc::new(TraceSink::enabled());
        let c = Counters::with_trace(sink.clone());
        let mut color = vec![INVALID; g.num_vertices()];
        let worklist: Vec<VertexId> = g.vertices().collect();
        vb_extend(&g, EdgeView::full(), &mut color, worklist, g.max_degree() + 1, 0, &c);
        // VB colors every worklist vertex, so all n are settled.
        assert_rounds_account_for(&sink, &c, g.num_vertices() as u64)?;
    }

    #[test]
    fn luby_round_records_sum_to_totals(g in arb_graph(80, 200), seed in 0u64..50) {
        use symmetry_breaking::core::mis::luby::luby_extend;
        use symmetry_breaking::core::mis::status::UNDECIDED;
        let sink = Arc::new(TraceSink::enabled());
        let c = Counters::with_trace(sink.clone());
        let mut status = vec![UNDECIDED; g.num_vertices()];
        luby_extend(&g, EdgeView::full(), &mut status, None, seed, &c);
        // Luby decides IN/OUT for every participant, so all n are settled.
        assert_rounds_account_for(&sink, &c, g.num_vertices() as u64)?;
    }
}
