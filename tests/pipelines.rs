//! End-to-end pipelines spanning every crate: generate a Table II
//! stand-in, decompose it, solve all three problems with every algorithm
//! on both execution models, and verify each solution independently.

use symmetry_breaking::prelude::*;

/// Representative shapes: chain-heavy (lp1), dense-core (c-73), heavy-tail
//  (kron), and geometric (rgg).
fn test_graphs() -> Vec<(GraphId, Graph)> {
    [
        GraphId::Lp1,
        GraphId::C73,
        GraphId::KronLogn20,
        GraphId::Rgg23,
    ]
    .into_iter()
    .map(|id| (id, generate(id, Scale::Tiny, 2024)))
    .collect()
}

#[test]
fn matching_pipeline_all_algorithms() {
    for (id, g) in test_graphs() {
        for algo in [
            MmAlgorithm::Baseline,
            MmAlgorithm::Bridge,
            MmAlgorithm::Rand { partitions: 10 },
            MmAlgorithm::Degk { k: 2 },
            MmAlgorithm::Bicc,
        ] {
            for arch in [Arch::Cpu, Arch::GpuSim] {
                let run = maximal_matching(&g, algo, arch, 7);
                check_maximal_matching(&g, &run.mate)
                    .unwrap_or_else(|e| panic!("{id:?} {algo:?} {arch}: {e}"));
                assert!(
                    run.cardinality() > 0,
                    "{id:?} {algo:?} {arch}: empty matching"
                );
            }
        }
    }
}

#[test]
fn coloring_pipeline_all_algorithms() {
    for (id, g) in test_graphs() {
        for algo in [
            ColorAlgorithm::Baseline,
            ColorAlgorithm::Bridge,
            ColorAlgorithm::Rand { partitions: 2 },
            ColorAlgorithm::Degk { k: 2 },
            ColorAlgorithm::Bicc,
        ] {
            for arch in [Arch::Cpu, Arch::GpuSim] {
                let run = vertex_coloring(&g, algo, arch, 7);
                check_coloring(&g, &run.color)
                    .unwrap_or_else(|e| panic!("{id:?} {algo:?} {arch}: {e}"));
                // Any proper coloring needs at least 2 colors on a graph
                // with an edge and at most Δ+1 with these greedy schemes.
                assert!(run.num_colors() >= 2, "{id:?} {algo:?} {arch}");
                assert!(
                    run.num_colors() <= g.max_degree() + 2,
                    "{id:?} {algo:?} {arch}: {} colors for Δ = {}",
                    run.num_colors(),
                    g.max_degree()
                );
            }
        }
    }
}

#[test]
fn mis_pipeline_all_algorithms() {
    for (id, g) in test_graphs() {
        for algo in [
            MisAlgorithm::Baseline,
            MisAlgorithm::Bridge,
            MisAlgorithm::Rand { partitions: 10 },
            MisAlgorithm::Degk { k: 2 },
            MisAlgorithm::Bicc,
        ] {
            for arch in [Arch::Cpu, Arch::GpuSim] {
                let run = maximal_independent_set(&g, algo, arch, 7);
                check_maximal_independent_set(&g, &run.in_set)
                    .unwrap_or_else(|e| panic!("{id:?} {algo:?} {arch}: {e}"));
                assert!(run.size() > 0, "{id:?} {algo:?} {arch}: empty MIS");
            }
        }
    }
}

#[test]
fn decomposition_pieces_partition_every_suite_graph() {
    for id in GraphId::ALL {
        let g = generate(id, Scale::Tiny, 7);
        let c = Counters::new();

        let b = decompose_bridge(&g, &c);
        assert_eq!(
            b.component_graph(&g).num_edges() + b.bridge_graph(&g).num_edges(),
            g.num_edges(),
            "{id:?}: bridge pieces must partition edges"
        );

        let r = decompose_rand(&g, 5, 3, &c);
        assert_eq!(
            r.m_induced + r.m_cross,
            g.num_edges(),
            "{id:?}: rand pieces must partition edges"
        );

        let d = decompose_degk(&g, 2, &c);
        assert_eq!(
            d.m_high + d.m_low + d.m_cross,
            g.num_edges(),
            "{id:?}: degk pieces must partition edges"
        );
        assert!(
            d.low_graph(&g).max_degree() <= 2,
            "{id:?}: G_L must be degree ≤ 2"
        );

        let m = decompose_metis_like(&g, 4, &c);
        assert_eq!(
            m.induced_view().num_edges(&g) + m.cross_view().num_edges(&g),
            g.num_edges(),
            "{id:?}: metis-like pieces must partition edges"
        );
    }
}

#[test]
fn solution_quality_is_comparable_across_algorithms() {
    // Decomposition must not degrade solution quality materially:
    // matchings within 25% of the baseline's cardinality, MIS within 25%,
    // colors within 50% (§IV-D reports a few percent in the paper).
    for (id, g) in test_graphs() {
        let base_m = maximal_matching(&g, MmAlgorithm::Baseline, Arch::Cpu, 3).cardinality();
        let rand_m =
            maximal_matching(&g, MmAlgorithm::Rand { partitions: 10 }, Arch::Cpu, 3).cardinality();
        assert!(
            (rand_m as f64) > 0.75 * base_m as f64,
            "{id:?}: MM-Rand cardinality {rand_m} vs baseline {base_m}"
        );

        let base_i = maximal_independent_set(&g, MisAlgorithm::Baseline, Arch::Cpu, 3).size();
        let deg2_i = maximal_independent_set(&g, MisAlgorithm::Degk { k: 2 }, Arch::Cpu, 3).size();
        assert!(
            (deg2_i as f64) > 0.75 * base_i as f64,
            "{id:?}: MIS-Deg2 size {deg2_i} vs baseline {base_i}"
        );
    }
}

#[test]
fn io_round_trip_through_files() {
    let g = generate(GraphId::C73, Scale::Tiny, 5);
    let dir = std::env::temp_dir().join("sb-integration-io");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("c73.edges");
    let f = std::fs::File::create(&path).unwrap();
    symmetry_breaking::graph::io::write_edge_list(&g, f).unwrap();
    let g2 = symmetry_breaking::graph::io::read_path(&path).unwrap();
    assert_eq!(g, g2);
    std::fs::remove_dir_all(&dir).ok();
}
